use crate::boolean::column_index;
use crate::{BoolVec, Matrix, StpError};
use std::fmt;

/// A *logic matrix*: a `2 × 2ᵏ` matrix whose columns are elements of `B`
/// (Definition 2 of the paper).
///
/// A logic matrix is the STP representation of a `k`-input Boolean function —
/// it is exactly a truth table read in the paper's right-to-left column
/// convention: **column 0 is the output for the all-true assignment** of
/// `(x₁, …, xₖ)` and column `2ᵏ − 1` is the output for the all-false
/// assignment.  The *structural matrix* `M_σ` of an operator `σ` is the logic
/// matrix of that operator.
///
/// Internally only the top row is stored, bit-packed, because each column is
/// one of the two basis vectors.
///
/// ```
/// use stp::{BoolVec, LogicMatrix};
///
/// // The structural matrix of NAND and its application to (true, true).
/// let nand = LogicMatrix::nand();
/// assert_eq!(nand.apply(&[BoolVec::TRUE, BoolVec::TRUE]), BoolVec::FALSE);
/// assert_eq!(nand.apply(&[BoolVec::FALSE, BoolVec::TRUE]), BoolVec::TRUE);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicMatrix {
    /// Number of Boolean arguments `k`; the matrix has `2ᵏ` columns.
    arity: usize,
    /// Bit `j` of this packed vector is 1 iff column `j` equals `[1, 0]ᵀ`.
    /// Words are stored little-endian (`bits[0]` holds columns 0..64).
    bits: Vec<u64>,
}

fn words_for(arity: usize) -> usize {
    let cols = 1usize << arity;
    cols.div_ceil(64).max(1)
}

impl LogicMatrix {
    /// Maximum supported arity.  `2ᵏ` columns are materialised, so the limit
    /// keeps memory bounded (2²⁴ columns = 2 MiB).
    pub const MAX_ARITY: usize = 24;

    /// Creates the logic matrix of the constant-false function of the given
    /// arity (all columns `[0, 1]ᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `arity > Self::MAX_ARITY`.
    pub fn constant_false(arity: usize) -> Self {
        assert!(arity <= Self::MAX_ARITY, "logic matrix arity too large");
        LogicMatrix {
            arity,
            bits: vec![0; words_for(arity)],
        }
    }

    /// Creates the logic matrix of the constant-true function of the given
    /// arity (all columns `[1, 0]ᵀ`).
    pub fn constant_true(arity: usize) -> Self {
        let mut m = Self::constant_false(arity);
        let cols = 1usize << arity;
        for j in 0..cols {
            m.set_column(j, BoolVec::TRUE);
        }
        m
    }

    /// Builds the logic matrix of an arbitrary function by enumerating all
    /// assignments.  `f` receives the argument values `(x₁, …, xₖ)`.
    ///
    /// # Panics
    ///
    /// Panics if `arity > Self::MAX_ARITY`.
    pub fn from_fn<F: FnMut(&[bool]) -> bool>(arity: usize, mut f: F) -> Self {
        let mut m = Self::constant_false(arity);
        let cols = 1usize << arity;
        let mut args = vec![false; arity];
        for j in 0..cols {
            // Column j: x_m is true iff bit (k - m) of j is 0 (right-to-left TT).
            for (m_idx, arg) in args.iter_mut().enumerate() {
                let bit = (j >> (arity - 1 - m_idx)) & 1;
                *arg = bit == 0;
            }
            if f(&args) {
                m.set_column(j, BoolVec::TRUE);
            }
        }
        m
    }

    /// Builds a logic matrix from truth-table words in the *variable-0 is the
    /// least-significant index* convention used by the `truthtable` crate:
    /// bit `i` of the table is the output when variable `j` takes the value
    /// `(i >> j) & 1`, with `x₁` mapped to variable 0.
    pub fn from_truth_table_bits(arity: usize, table: &[u64]) -> Self {
        Self::from_fn(arity, |args| {
            let mut index = 0usize;
            for (j, &a) in args.iter().enumerate() {
                if a {
                    index |= 1 << j;
                }
            }
            (table[index / 64] >> (index % 64)) & 1 == 1
        })
    }

    /// Exports the function as truth-table words in the `truthtable`-crate
    /// convention (see [`LogicMatrix::from_truth_table_bits`]).
    pub fn to_truth_table_bits(&self) -> Vec<u64> {
        let bits = 1usize << self.arity;
        let mut table = vec![0u64; bits.div_ceil(64).max(1)];
        let mut args = vec![BoolVec::FALSE; self.arity];
        for i in 0..bits {
            for (j, arg) in args.iter_mut().enumerate() {
                *arg = BoolVec::new((i >> j) & 1 == 1);
            }
            if self.apply(&args).value() {
                table[i / 64] |= 1 << (i % 64);
            }
        }
        table
    }

    /// The structural matrix `M¬` of negation.
    pub fn not() -> Self {
        Self::from_fn(1, |a| !a[0])
    }

    /// The structural matrix `M∧` of conjunction: `[1 0 0 0; 0 1 1 1]`.
    pub fn and() -> Self {
        Self::from_fn(2, |a| a[0] && a[1])
    }

    /// The structural matrix `M∨` of disjunction: `[1 1 1 0; 0 0 0 1]`.
    pub fn or() -> Self {
        Self::from_fn(2, |a| a[0] || a[1])
    }

    /// The structural matrix `M⊕` of exclusive or.
    pub fn xor() -> Self {
        Self::from_fn(2, |a| a[0] ^ a[1])
    }

    /// The structural matrix of NAND.
    pub fn nand() -> Self {
        Self::from_fn(2, |a| !(a[0] && a[1]))
    }

    /// The structural matrix of NOR.
    pub fn nor() -> Self {
        Self::from_fn(2, |a| !(a[0] || a[1]))
    }

    /// The structural matrix `M↔` of equivalence (XNOR).
    pub fn xnor() -> Self {
        Self::from_fn(2, |a| a[0] == a[1])
    }

    /// The structural matrix `M→` of implication: `[1 0 1 1; 0 1 0 0]`.
    pub fn implies() -> Self {
        Self::from_fn(2, |a| !a[0] || a[1])
    }

    /// The structural matrix of the 3-input if-then-else `ite(s, t, e)`.
    pub fn ite() -> Self {
        Self::from_fn(3, |a| if a[0] { a[1] } else { a[2] })
    }

    /// The structural matrix of the 3-input majority function.
    pub fn maj3() -> Self {
        Self::from_fn(3, |a| (a[0] as u8 + a[1] as u8 + a[2] as u8) >= 2)
    }

    /// Number of Boolean arguments `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of columns, `2ᵏ`.
    pub fn num_columns(&self) -> usize {
        1usize << self.arity
    }

    /// Returns column `j` of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 2ᵏ`.
    pub fn column(&self, j: usize) -> BoolVec {
        assert!(j < self.num_columns(), "column index out of range");
        BoolVec::new((self.bits[j / 64] >> (j % 64)) & 1 == 1)
    }

    /// Sets column `j` of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 2ᵏ`.
    pub fn set_column(&mut self, j: usize, value: BoolVec) {
        assert!(j < self.num_columns(), "column index out of range");
        if value.value() {
            self.bits[j / 64] |= 1 << (j % 64);
        } else {
            self.bits[j / 64] &= !(1 << (j % 64));
        }
    }

    /// Applies the matrix to a full argument list: `M ⋉ x₁ ⋉ … ⋉ xₖ`.
    ///
    /// # Panics
    ///
    /// Panics if the number of arguments differs from the arity.
    pub fn apply(&self, args: &[BoolVec]) -> BoolVec {
        assert_eq!(
            args.len(),
            self.arity,
            "logic matrix of arity {} applied to {} arguments",
            self.arity,
            args.len()
        );
        self.column(column_index(args))
    }

    /// Fallible variant of [`LogicMatrix::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`StpError::ArityMismatch`] when the argument count differs
    /// from the arity.
    pub fn try_apply(&self, args: &[BoolVec]) -> Result<BoolVec, StpError> {
        if args.len() != self.arity {
            return Err(StpError::ArityMismatch {
                expected: self.arity,
                actual: args.len(),
            });
        }
        Ok(self.column(column_index(args)))
    }

    /// Partial application `M ⋉ x₁`: multiplying by the first argument keeps
    /// the half of the columns selected by it, producing a logic matrix of
    /// arity `k − 1`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has arity 0.
    #[must_use]
    pub fn apply_first(&self, x1: BoolVec) -> LogicMatrix {
        assert!(self.arity > 0, "cannot partially apply a constant");
        let half = 1usize << (self.arity - 1);
        let offset = if x1.value() { 0 } else { half };
        let mut out = LogicMatrix::constant_false(self.arity - 1);
        for j in 0..half {
            out.set_column(j, self.column(offset + j));
        }
        out
    }

    /// Left-composes with negation: returns `M¬ · M`, the logic matrix of the
    /// complemented function.
    #[must_use]
    pub fn negate(&self) -> LogicMatrix {
        let mut out = self.clone();
        let cols = self.num_columns();
        for j in 0..cols {
            out.set_column(j, self.column(j).negate());
        }
        out
    }

    /// Semi-tensor product of two logic matrices, `self ⋉ rhs`.
    ///
    /// If `self` encodes `σ(y₁, …, y_m)` and `rhs` encodes `ψ(z₁, …, z_k)`,
    /// the product encodes the composition
    /// `σ(ψ(z₁, …, z_k), y₂, …, y_m)` over `k + m − 1` arguments — exactly
    /// what `M_∨ ⋉ M_¬ = M_→` computes in Example 1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `self` has arity 0 (a constant cannot absorb an argument) or
    /// if the resulting arity would exceed [`LogicMatrix::MAX_ARITY`].
    #[must_use]
    pub fn stp_logic(&self, rhs: &LogicMatrix) -> LogicMatrix {
        assert!(
            self.arity > 0,
            "cannot compose into a constant logic matrix"
        );
        let result_arity = rhs.arity + self.arity - 1;
        assert!(
            result_arity <= Self::MAX_ARITY,
            "composed logic matrix arity {result_arity} too large"
        );
        let mut out = LogicMatrix::constant_false(result_arity);
        let cols = 1usize << result_arity;
        let rest = self.arity - 1;
        for j in 0..cols {
            // The first rhs.arity argument positions feed ψ; the remaining
            // `rest` positions are the trailing arguments of σ.
            let inner_cols = j >> rest;
            let tail = j & ((1usize << rest) - 1);
            let inner = rhs.column(inner_cols);
            let outer_index = (inner.selector() << rest) | tail;
            out.set_column(j, self.column(outer_index));
        }
        out
    }

    /// Converts into a dense [`Matrix`] (both rows materialised).
    pub fn to_matrix(&self) -> Matrix {
        let cols = self.num_columns();
        let mut m = Matrix::zeros(2, cols);
        for j in 0..cols {
            if self.column(j).value() {
                m[(0, j)] = 1;
            } else {
                m[(1, j)] = 1;
            }
        }
        m
    }

    /// Parses a dense `2 × 2ᵏ` matrix into a logic matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StpError::NotLogicMatrix`] if any column is not a Boolean
    /// basis vector, and [`StpError::DimensionMismatch`] if the matrix does
    /// not have two rows or a power-of-two column count.
    pub fn from_matrix(m: &Matrix) -> Result<Self, StpError> {
        let (rows, cols) = m.shape();
        if rows != 2 || !cols.is_power_of_two() {
            return Err(StpError::DimensionMismatch {
                left: m.shape(),
                right: (2, cols.next_power_of_two()),
                operation: "logic matrix conversion",
            });
        }
        let arity = cols.trailing_zeros() as usize;
        let mut out = LogicMatrix::constant_false(arity);
        for j in 0..cols {
            match (m.get(0, j), m.get(1, j)) {
                (Some(1), Some(0)) => out.set_column(j, BoolVec::TRUE),
                (Some(0), Some(1)) => out.set_column(j, BoolVec::FALSE),
                _ => return Err(StpError::NotLogicMatrix { column: j }),
            }
        }
        Ok(out)
    }

    /// Returns `true` if the function is constant (all columns equal).
    pub fn is_constant(&self) -> Option<BoolVec> {
        let first = self.column(0);
        let cols = self.num_columns();
        for j in 1..cols {
            if self.column(j) != first {
                return None;
            }
        }
        Some(first)
    }
}

impl fmt::Debug for LogicMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicMatrix(arity={}, row0=", self.arity)?;
        for j in 0..self.num_columns() {
            write!(f, "{}", if self.column(j).value() { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for LogicMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_assignments(k: usize) -> Vec<Vec<BoolVec>> {
        let mut out = Vec::new();
        for i in 0..(1usize << k) {
            out.push(
                (0..k)
                    .map(|j| BoolVec::new((i >> j) & 1 == 1))
                    .collect::<Vec<_>>(),
            );
        }
        out
    }

    #[test]
    fn structural_matrices_match_paper() {
        // M¬ = [0 1; 1 0]
        let not = LogicMatrix::not();
        assert_eq!(not.column(0), BoolVec::FALSE);
        assert_eq!(not.column(1), BoolVec::TRUE);

        // M∨ = [1 1 1 0; 0 0 0 1]
        let or = LogicMatrix::or();
        let row0: Vec<bool> = (0..4).map(|j| or.column(j).value()).collect();
        assert_eq!(row0, vec![true, true, true, false]);

        // M→ = [1 0 1 1; 0 1 0 0]
        let imp = LogicMatrix::implies();
        let row0: Vec<bool> = (0..4).map(|j| imp.column(j).value()).collect();
        assert_eq!(row0, vec![true, false, true, true]);
    }

    #[test]
    fn example1_implication_identity() {
        // a → b = ¬a ∨ b, i.e. M∨ ⋉ M¬ = M→ (Example 1).
        let composed = LogicMatrix::or().stp_logic(&LogicMatrix::not());
        assert_eq!(composed, LogicMatrix::implies());
    }

    #[test]
    fn apply_matches_semantics() {
        let and = LogicMatrix::and();
        for args in all_assignments(2) {
            let expected = args[0].value() && args[1].value();
            assert_eq!(and.apply(&args).value(), expected);
        }
        let ite = LogicMatrix::ite();
        for args in all_assignments(3) {
            let expected = if args[0].value() {
                args[1].value()
            } else {
                args[2].value()
            };
            assert_eq!(ite.apply(&args).value(), expected);
        }
    }

    #[test]
    fn apply_first_is_cofactoring() {
        let imp = LogicMatrix::implies();
        let when_true = imp.apply_first(BoolVec::TRUE);
        let when_false = imp.apply_first(BoolVec::FALSE);
        // a=1: a→b ≡ b; a=0: a→b ≡ 1.
        assert_eq!(when_true.column(0), BoolVec::TRUE);
        assert_eq!(when_true.column(1), BoolVec::FALSE);
        assert_eq!(when_false.is_constant(), Some(BoolVec::TRUE));
    }

    #[test]
    fn stp_logic_agrees_with_dense_stp() {
        let pairs = [
            (LogicMatrix::or(), LogicMatrix::not()),
            (LogicMatrix::and(), LogicMatrix::xor()),
            (LogicMatrix::xnor(), LogicMatrix::nand()),
            (LogicMatrix::ite(), LogicMatrix::or()),
        ];
        for (a, b) in pairs {
            let dense = a.to_matrix().stp(&b.to_matrix());
            let composed = a.stp_logic(&b);
            assert_eq!(LogicMatrix::from_matrix(&dense).unwrap(), composed);
        }
    }

    #[test]
    fn try_apply_arity_mismatch() {
        let and = LogicMatrix::and();
        assert!(matches!(
            and.try_apply(&[BoolVec::TRUE]),
            Err(StpError::ArityMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn truth_table_round_trip() {
        // x1 ⊕ x2 ⊕ x3 in the LSB-var0 convention has table 0x96.
        let m = LogicMatrix::from_truth_table_bits(3, &[0x96]);
        for args in all_assignments(3) {
            let expected = args[0].value() ^ args[1].value() ^ args[2].value();
            assert_eq!(m.apply(&args).value(), expected);
        }
        assert_eq!(m.to_truth_table_bits(), vec![0x96]);
    }

    #[test]
    fn dense_round_trip_and_validation() {
        let maj = LogicMatrix::maj3();
        let dense = maj.to_matrix();
        assert!(dense.is_column_stochastic_boolean());
        assert_eq!(LogicMatrix::from_matrix(&dense).unwrap(), maj);

        let bad = Matrix::from_rows(&[&[1, 1], &[1, 0]]);
        assert!(matches!(
            LogicMatrix::from_matrix(&bad),
            Err(StpError::NotLogicMatrix { column: 0 })
        ));
    }

    #[test]
    fn constants_detection() {
        assert_eq!(
            LogicMatrix::constant_true(3).is_constant(),
            Some(BoolVec::TRUE)
        );
        assert_eq!(
            LogicMatrix::constant_false(2).is_constant(),
            Some(BoolVec::FALSE)
        );
        assert_eq!(LogicMatrix::xor().is_constant(), None);
    }

    #[test]
    fn negate_composes_with_not() {
        let and = LogicMatrix::and();
        assert_eq!(and.negate(), LogicMatrix::nand());
        assert_eq!(and.negate().negate(), and);
    }
}
