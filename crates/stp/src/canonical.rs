//! Boolean-expression AST and canonical-form construction.
//!
//! Property 3 of the paper states that any logic expression
//! `Φ(x₁, …, xₙ)` can be written as `Φ = M_Φ ⋉ x₁ ⋉ … ⋉ xₙ` with a single
//! `2 × 2ⁿ` logic matrix `M_Φ`.  [`canonical_form`] builds `M_Φ` purely by
//! STP algebra (structural matrices, retrieval matrices and the
//! power-reducing matrix), while [`canonical_form_enumerated`] builds it by
//! brute-force evaluation; the two agree on every expression, which is one of
//! the crate's property tests.

use crate::swap::{power_reducing_matrix, retrieval_matrix};
use crate::{BoolVec, LogicMatrix, Matrix, StpError};

/// A Boolean expression over variables `x₁ … xₙ` (1-based in the paper,
/// 0-based in [`Expr::Var`]).
///
/// ```
/// use stp::{canonical_form, BoolVec, Expr};
///
/// // Φ(a, b) = a → b over two variables.
/// let phi = Expr::implies(Expr::var(0), Expr::var(1));
/// let m = canonical_form(&phi, 2)?;
/// assert_eq!(m.apply(&[BoolVec::FALSE, BoolVec::TRUE]), BoolVec::TRUE);
/// # Ok::<(), stp::StpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// The variable with the given 0-based index.
    Var(usize),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
    /// Implication `lhs → rhs`.
    Implies(Box<Expr>, Box<Expr>),
    /// Equivalence `lhs ↔ rhs`.
    Iff(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The variable `x_{index+1}`.
    pub fn var(index: usize) -> Expr {
        Expr::Var(index)
    }

    /// A constant expression.
    pub fn constant(value: bool) -> Expr {
        Expr::Const(value)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Conjunction.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Exclusive or.
    pub fn xor(a: Expr, b: Expr) -> Expr {
        Expr::Xor(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Expr, b: Expr) -> Expr {
        Expr::Implies(Box::new(a), Box::new(b))
    }

    /// Equivalence.
    pub fn iff(a: Expr, b: Expr) -> Expr {
        Expr::Iff(Box::new(a), Box::new(b))
    }

    /// Evaluates the expression under an assignment (index `i` gives the
    /// value of `Var(i)`).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of the assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(i) => assignment[*i],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            Expr::Implies(a, b) => !a.eval(assignment) || b.eval(assignment),
            Expr::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
        }
    }

    /// The largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(i) => Some(*i),
            Expr::Not(e) => e.max_var(),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Xor(a, b)
            | Expr::Implies(a, b)
            | Expr::Iff(a, b) => match (a.max_var(), b.max_var()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            },
        }
    }
}

/// Builds the canonical form `M_Φ` of an expression over `num_vars`
/// variables by **pure STP algebra**: each sub-expression is normalised to a
/// dense `2 × 2ⁿ` matrix acting on the stacked vector `x₍ₙ₎`, binary
/// operators are merged with the identity
/// `(M₁ x₍ₙ₎)(M₂ x₍ₙ₎) = M₁ (I₂ⁿ ⊗ M₂) M_r(2ⁿ) x₍ₙ₎`,
/// and variables are introduced with retrieval matrices.
///
/// # Errors
///
/// Returns [`StpError::VariableOutOfRange`] if the expression references a
/// variable `≥ num_vars`.
///
/// # Panics
///
/// Panics if `num_vars` exceeds 12 — the dense normalisation materialises a
/// `2 × 4ⁿ` intermediate, so larger supports should use
/// [`canonical_form_enumerated`].
pub fn canonical_form(expr: &Expr, num_vars: usize) -> Result<LogicMatrix, StpError> {
    assert!(
        num_vars <= 12,
        "algebraic canonical form limited to 12 variables; use canonical_form_enumerated"
    );
    if let Some(max) = expr.max_var() {
        if max >= num_vars {
            return Err(StpError::VariableOutOfRange {
                variable: max,
                num_vars,
            });
        }
    }
    let n = num_vars.max(1);
    let dense = normalise(expr, n);
    let logic = LogicMatrix::from_matrix(&dense).expect("normalisation yields a logic matrix");
    if num_vars == 0 {
        // Collapse the padding variable introduced for constants.
        let value = logic.column(0);
        let mut constant = LogicMatrix::constant_false(0);
        constant.set_column(0, value);
        return Ok(constant);
    }
    Ok(logic)
}

/// Normalises `expr` into a dense `2 × 2ⁿ` matrix `M` with
/// `expr = M ⋉ x₍ₙ₎`.
fn normalise(expr: &Expr, n: usize) -> Matrix {
    let width = 1usize << n;
    match expr {
        Expr::Const(c) => {
            let value = if *c {
                Matrix::column(&[1, 0])
            } else {
                Matrix::column(&[0, 1])
            };
            value.kron(&Matrix::ones_row(width))
        }
        Expr::Var(i) => retrieval_matrix(i + 1, n),
        Expr::Not(e) => {
            let inner = normalise(e, n);
            LogicMatrix::not()
                .to_matrix()
                .mul(&inner)
                .expect("2x2 times 2x2^n is conformable")
        }
        Expr::And(a, b) => merge_binary(&LogicMatrix::and(), a, b, n),
        Expr::Or(a, b) => merge_binary(&LogicMatrix::or(), a, b, n),
        Expr::Xor(a, b) => merge_binary(&LogicMatrix::xor(), a, b, n),
        Expr::Implies(a, b) => merge_binary(&LogicMatrix::implies(), a, b, n),
        Expr::Iff(a, b) => merge_binary(&LogicMatrix::xnor(), a, b, n),
    }
}

/// Implements `M_σ ⋉ (M₁ x₍ₙ₎) ⋉ (M₂ x₍ₙ₎) = M_σ ⋉ M₁ ⋉ (I₂ⁿ ⊗ M₂) ⋉ M_r(2ⁿ) ⋉ x₍ₙ₎`.
fn merge_binary(op: &LogicMatrix, a: &Expr, b: &Expr, n: usize) -> Matrix {
    let m1 = normalise(a, n);
    let m2 = normalise(b, n);
    let width = 1usize << n;
    let op_dense = op.to_matrix();
    op_dense
        .stp(&m1)
        .stp(&Matrix::identity(width).kron(&m2))
        .stp(&power_reducing_matrix(width))
}

/// Builds the canonical form `M_Φ` by enumerating all `2ⁿ` assignments.
///
/// This is the practical constructor used by the simulator; it agrees with
/// [`canonical_form`] on every expression (property-tested) but has no limit
/// other than [`LogicMatrix::MAX_ARITY`].
///
/// # Errors
///
/// Returns [`StpError::VariableOutOfRange`] if the expression references a
/// variable `≥ num_vars`.
pub fn canonical_form_enumerated(expr: &Expr, num_vars: usize) -> Result<LogicMatrix, StpError> {
    if let Some(max) = expr.max_var() {
        if max >= num_vars {
            return Err(StpError::VariableOutOfRange {
                variable: max,
                num_vars,
            });
        }
    }
    Ok(LogicMatrix::from_fn(num_vars, |args| expr.eval(args)))
}

/// Evaluates `Φ(args)` by repeated STP partial application of the canonical
/// form, mirroring the step-by-step computation of Example 2 of the paper.
pub fn simulate_canonical(matrix: &LogicMatrix, args: &[BoolVec]) -> BoolVec {
    let mut current = matrix.clone();
    for &arg in args {
        current = current.apply_first(arg);
    }
    current.column(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_implication() {
        // a → b and ¬a ∨ b have the same canonical form.
        let lhs = Expr::implies(Expr::var(0), Expr::var(1));
        let rhs = Expr::or(Expr::not(Expr::var(0)), Expr::var(1));
        let m1 = canonical_form(&lhs, 2).unwrap();
        let m2 = canonical_form(&rhs, 2).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(m1, LogicMatrix::implies());
    }

    #[test]
    fn example2_liars() {
        // Φ(a, b, c) = (a ↔ ¬b) ∧ (b ↔ ¬c) ∧ (c ↔ ¬a ∧ ¬b)
        let a = || Expr::var(0);
        let b = || Expr::var(1);
        let c = || Expr::var(2);
        let phi = Expr::and(
            Expr::and(
                Expr::iff(a(), Expr::not(b())),
                Expr::iff(b(), Expr::not(c())),
            ),
            Expr::iff(c(), Expr::and(Expr::not(a()), Expr::not(b()))),
        );
        let m = canonical_form(&phi, 3).unwrap();
        // The paper's canonical form has a single satisfying column at index 5
        // (assignment a = false, b = true, c = false).
        let row0: Vec<bool> = (0..8).map(|j| m.column(j).value()).collect();
        assert_eq!(
            row0,
            vec![false, false, false, false, false, true, false, false]
        );
        // Simulating the pattern 010 (b honest, a and c liars) yields true.
        let value = simulate_canonical(&m, &[BoolVec::FALSE, BoolVec::TRUE, BoolVec::FALSE]);
        assert_eq!(value, BoolVec::TRUE);
        // Every other assignment is false.
        for i in 0..8usize {
            let args: Vec<BoolVec> = (0..3).map(|j| BoolVec::new((i >> j) & 1 == 1)).collect();
            let expected = i == 2; // a=0, b=1, c=0 with var0 = LSB.
            assert_eq!(m.apply(&args).value(), expected);
        }
    }

    #[test]
    fn algebraic_matches_enumerated_on_fixed_expressions() {
        let exprs = vec![
            Expr::constant(true),
            Expr::constant(false),
            Expr::var(2),
            Expr::xor(Expr::var(0), Expr::xor(Expr::var(1), Expr::var(2))),
            Expr::and(
                Expr::or(Expr::var(0), Expr::not(Expr::var(1))),
                Expr::implies(Expr::var(2), Expr::var(0)),
            ),
            Expr::iff(
                Expr::and(Expr::var(0), Expr::var(1)),
                Expr::or(Expr::var(2), Expr::var(3)),
            ),
        ];
        for e in exprs {
            let n = e.max_var().map_or(0, |m| m + 1).max(1);
            let alg = canonical_form(&e, n).unwrap();
            let enu = canonical_form_enumerated(&e, n).unwrap();
            assert_eq!(alg, enu, "mismatch for {e:?}");
        }
    }

    #[test]
    fn out_of_range_variable_is_rejected() {
        let e = Expr::var(4);
        assert!(matches!(
            canonical_form(&e, 3),
            Err(StpError::VariableOutOfRange {
                variable: 4,
                num_vars: 3
            })
        ));
        assert!(canonical_form_enumerated(&e, 3).is_err());
    }

    #[test]
    fn simulate_canonical_matches_apply() {
        let e = Expr::or(
            Expr::and(Expr::var(0), Expr::not(Expr::var(1))),
            Expr::xor(Expr::var(2), Expr::var(0)),
        );
        let m = canonical_form_enumerated(&e, 3).unwrap();
        for i in 0..8usize {
            let args: Vec<BoolVec> = (0..3).map(|j| BoolVec::new((i >> j) & 1 == 1)).collect();
            assert_eq!(simulate_canonical(&m, &args), m.apply(&args));
        }
    }

    #[test]
    fn constant_expression_canonical_form() {
        let m = canonical_form(&Expr::constant(true), 0).unwrap();
        assert_eq!(m.arity(), 0);
        assert_eq!(m.column(0), BoolVec::TRUE);
    }
}
