use std::error::Error;
use std::fmt;

/// Errors produced by semi-tensor product operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StpError {
    /// The dimensions of two matrices are incompatible for the requested
    /// operation (e.g. an ordinary product of a `2×3` by a `2×2` matrix).
    DimensionMismatch {
        /// Dimensions of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// A matrix expected to be a logic matrix (columns in `B`) is not.
    NotLogicMatrix {
        /// Index of the offending column.
        column: usize,
    },
    /// A variable index is outside the declared support of an expression.
    VariableOutOfRange {
        /// The offending variable index.
        variable: usize,
        /// The declared number of variables.
        num_vars: usize,
    },
    /// The number of argument vectors does not match the arity of the matrix.
    ArityMismatch {
        /// Arity expected by the logic matrix.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
}

impl fmt::Display for StpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StpError::DimensionMismatch {
                left,
                right,
                operation,
            } => write!(
                f,
                "dimension mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            StpError::NotLogicMatrix { column } => {
                write!(f, "column {column} is not a Boolean basis vector")
            }
            StpError::VariableOutOfRange { variable, num_vars } => write!(
                f,
                "variable x{variable} out of range for an expression over {num_vars} variables"
            ),
            StpError::ArityMismatch { expected, actual } => write!(
                f,
                "logic matrix of arity {expected} applied to {actual} arguments"
            ),
        }
    }
}

impl Error for StpError {}
