//! Struct-of-arrays signature storage.
//!
//! [`SignatureArena`] keeps the signatures of *all* nodes of a network in
//! one contiguous `Vec<u64>` — node-major, with a fixed `words_per_sig`
//! stride — instead of one heap-allocated [`Signature`] per node.  The
//! layout buys three things:
//!
//! 1. **O(1) allocations**: a full simulation pass allocates the arena once
//!    instead of once per node;
//! 2. **locality**: a node's signature is a dense sub-slice, and the rows of
//!    a topological level are close together, so the level-evaluation
//!    kernels stream through memory instead of pointer-chasing;
//! 3. **cheap views**: [`SigRef`] is a `Copy` slice view that supports the
//!    read operations the sweeping engines need without cloning, and
//!    [`Signature`] stays the public boundary type via
//!    [`SigRef::to_signature`].
//!
//! Rows are **generation-tagged**: [`SignatureArena::generation`] records
//! the pattern count at the time a row was last written, so after the
//! pattern set grows (incremental resimulation) the rows that were *not*
//! refreshed are recognisably stale — this replaces the per-node
//! `stale: Vec<bool>` bookkeeping of the pre-arena engines.
//!
//! The borrow puzzle of parallel level evaluation — every node of a level
//! writes its own row while reading fanin rows — is solved without `unsafe`
//! by [`SignatureArena::split_rows`]: a single `split_at_mut` walk hands out
//! the level's rows as disjoint `&mut [u64]` and wraps everything between
//! them in an [`ArenaRows`] reader.  Because node ids are topological
//! (fanins precede their node) and a node's fanins live on strictly lower
//! levels, no fanin is ever part of the level being written.

use crate::signature::Signature;

/// Number of `u64` words needed for `len` pattern bits (at least one).
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64).max(1)
}

/// Mask selecting the valid bits of the last word of a `len`-bit row.
#[inline]
fn tail_mask(len: usize) -> u64 {
    if len % 64 == 0 && len > 0 {
        u64::MAX
    } else if len == 0 {
        0
    } else {
        (1u64 << (len % 64)) - 1
    }
}

/// A borrowed, read-only view of one signature row (see [`SignatureArena`]).
///
/// `SigRef` is `Copy` and exposes the read operations the sweeping engines
/// use on hot paths; [`SigRef::to_signature`] converts to the owned
/// boundary type when a caller needs to keep the bits.
#[derive(Debug, Clone, Copy)]
pub struct SigRef<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> SigRef<'a> {
    /// Wraps a word slice as a `len`-bit signature view.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than `len` requires.  Bits beyond
    /// `len` in the last word must be zero (the arena maintains this
    /// invariant for its rows).
    pub fn new(words: &'a [u64], len: usize) -> Self {
        assert!(
            words.len() >= words_for(len),
            "SigRef over {} words cannot hold {} bits",
            words.len(),
            len
        );
        SigRef {
            words: &words[..words_for(len)],
            len,
        }
    }

    /// Number of pattern bits in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the view holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond [`SigRef::len`] are zero).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Value of pattern `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get_bit(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Number of patterns under which the node evaluates to one.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the node is zero under every pattern.
    pub fn is_const0(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if the node is one under every pattern (and there is at least
    /// one pattern).
    pub fn is_const1(&self) -> bool {
        self.len > 0 && self.count_ones() == self.len
    }

    /// Copies the view into an owned [`Signature`].
    pub fn to_signature(&self) -> Signature {
        Signature::from_words(self.len, self.words.to_vec())
    }
}

impl PartialEq for SigRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for SigRef<'_> {}

impl PartialEq<Signature> for SigRef<'_> {
    fn eq(&self, other: &Signature) -> bool {
        self.len == other.len() && self.words == other.words()
    }
}

impl PartialEq<SigRef<'_>> for Signature {
    fn eq(&self, other: &SigRef<'_>) -> bool {
        other == self
    }
}

/// Struct-of-arrays store for the signatures of every node of a network.
///
/// See the [module documentation](self) for the layout rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureArena {
    /// All rows, node-major: row `i` occupies
    /// `words[i * stride .. (i + 1) * stride]`.
    words: Vec<u64>,
    /// Words per row (`words_for(num_patterns)`).
    stride: usize,
    /// Pattern bits per row.
    num_patterns: usize,
    /// Number of rows (nodes).
    num_rows: usize,
    /// Pattern count at the time each row was last marked written; a row is
    /// stale when its generation differs from `num_patterns`.
    gens: Vec<u64>,
}

impl SignatureArena {
    /// Creates a zeroed arena of `num_rows` rows of `num_patterns` bits.
    /// Every row starts at generation 0 (stale unless `num_patterns == 0`).
    pub fn new(num_rows: usize, num_patterns: usize) -> Self {
        let stride = words_for(num_patterns);
        SignatureArena {
            words: vec![0u64; num_rows * stride],
            stride,
            num_patterns,
            num_rows,
            gens: vec![0u64; num_rows],
        }
    }

    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Pattern bits per row.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Words per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The pattern count recorded when row `i` was last
    /// [marked written](SignatureArena::mark_written).
    pub fn generation(&self, i: usize) -> u64 {
        self.gens[i]
    }

    /// `true` if row `i` was not refreshed since the pattern set last grew.
    pub fn is_stale(&self, i: usize) -> bool {
        self.gens[i] != self.num_patterns as u64
    }

    /// Records that row `i` now reflects all `num_patterns` patterns.
    pub fn mark_written(&mut self, i: usize) {
        self.gens[i] = self.num_patterns as u64;
    }

    /// Read access to row `i` (full stride).
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Write access to row `i` (full stride).  Does not change the row's
    /// generation — call [`SignatureArena::mark_written`] once the row holds
    /// all patterns.
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// A [`SigRef`] view of row `i`.
    pub fn sig(&self, i: usize) -> SigRef<'_> {
        SigRef {
            words: self.row(i),
            len: self.num_patterns,
        }
    }

    /// Copies row `i` into an owned [`Signature`].
    pub fn to_signature(&self, i: usize) -> Signature {
        self.sig(i).to_signature()
    }

    /// Overwrites row `i` with the bits of `sig` and marks it written.
    ///
    /// # Panics
    ///
    /// Panics if `sig.len()` differs from the arena's pattern count.
    pub fn set_signature(&mut self, i: usize, sig: &Signature) {
        assert_eq!(
            sig.len(),
            self.num_patterns,
            "signature length must match the arena's pattern count"
        );
        self.row_mut(i).copy_from_slice(sig.words());
        self.mark_written(i);
    }

    /// Sets pattern bit `index` of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_patterns()`.
    pub fn set_bit(&mut self, i: usize, index: usize, value: bool) {
        assert!(index < self.num_patterns, "bit index {index} out of range");
        let stride = self.stride;
        let word = &mut self.words[i * stride + index / 64];
        if value {
            *word |= 1u64 << (index % 64);
        } else {
            *word &= !(1u64 << (index % 64));
        }
    }

    /// Zeroes the tail bits (beyond the pattern count) of row `i`.  Kernels
    /// that write whole words call this to restore the masked-tail
    /// invariant [`SigRef`] relies on.
    pub fn mask_row_tail(&mut self, i: usize) {
        let mask = tail_mask(self.num_patterns);
        let stride = self.stride;
        self.words[i * stride + stride - 1] &= mask;
    }

    /// Grows every row to `new_num_patterns` bits, preserving existing bits
    /// and zeroing the new columns.  Restrides with a single allocation
    /// when the word count per row changes.  Row generations are preserved,
    /// so previously fresh rows become stale until re-marked.
    ///
    /// # Panics
    ///
    /// Panics if `new_num_patterns` is smaller than the current count.
    pub fn grow_patterns(&mut self, new_num_patterns: usize) {
        assert!(
            new_num_patterns >= self.num_patterns,
            "the arena cannot shrink"
        );
        let new_stride = words_for(new_num_patterns);
        if new_stride != self.stride {
            let mut new_words = vec![0u64; self.num_rows * new_stride];
            for r in 0..self.num_rows {
                new_words[r * new_stride..r * new_stride + self.stride]
                    .copy_from_slice(&self.words[r * self.stride..(r + 1) * self.stride]);
            }
            self.words = new_words;
            self.stride = new_stride;
        }
        self.num_patterns = new_num_patterns;
    }

    /// Splits the arena at row `i`: read access to all rows before `i`
    /// (the natural shape of sequential topological evaluation, where every
    /// fanin id precedes the node id) plus write access to row `i` itself.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn split_at_row(&mut self, i: usize) -> (ArenaPrefix<'_>, &mut [u64]) {
        assert!(i < self.num_rows, "row {i} out of range");
        let stride = self.stride;
        let (prefix, rest) = self.words.split_at_mut(i * stride);
        (
            ArenaPrefix {
                words: prefix,
                stride,
                num_patterns: self.num_patterns,
            },
            &mut rest[..stride],
        )
    }

    /// Splits the arena into write access for the rows in `group` and read
    /// access ([`ArenaRows`]) to every other row.
    ///
    /// The returned `Vec<&mut [u64]>` holds one full-stride row per group
    /// entry, in `group` order.  This is the safe-Rust foundation of
    /// parallel level evaluation: a level's nodes write their rows while
    /// their fanins (never members of the same level) are read through the
    /// reader.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not strictly ascending or indexes out of range.
    pub fn split_rows(&mut self, group: &[usize]) -> (Vec<&mut [u64]>, ArenaRows<'_>) {
        let stride = self.stride;
        let mut rows: Vec<&mut [u64]> = Vec::with_capacity(group.len());
        let mut segments: Vec<&[u64]> = Vec::with_capacity(group.len() + 1);
        let mut seg_starts: Vec<usize> = Vec::with_capacity(group.len() + 1);
        let mut rest: &mut [u64] = &mut self.words;
        let mut cursor = 0usize; // row index at which `rest` begins
        for &g in group {
            assert!(g >= cursor, "group rows must be strictly ascending");
            assert!(g < self.num_rows, "group row {g} out of range");
            let taken = std::mem::take(&mut rest);
            let (before, tail) = taken.split_at_mut((g - cursor) * stride);
            let (row, tail) = tail.split_at_mut(stride);
            seg_starts.push(cursor);
            segments.push(before);
            rows.push(row);
            rest = tail;
            cursor = g + 1;
        }
        seg_starts.push(cursor);
        segments.push(rest);
        (
            rows,
            ArenaRows {
                segments,
                seg_starts,
                group: group.to_vec(),
                stride,
                num_patterns: self.num_patterns,
            },
        )
    }
}

/// Read access to the arena rows *before* a [`SignatureArena::split_at_row`]
/// split point while the split row is mutably borrowed.
#[derive(Debug)]
pub struct ArenaPrefix<'a> {
    words: &'a [u64],
    stride: usize,
    num_patterns: usize,
}

impl ArenaPrefix<'_> {
    /// Read access to row `i` (which must precede the split row).
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// A [`SigRef`] view of row `i`.
    pub fn sig(&self, i: usize) -> SigRef<'_> {
        SigRef {
            words: self.row(i),
            len: self.num_patterns,
        }
    }
}

/// Read access to the arena rows *outside* a [`SignatureArena::split_rows`]
/// group while the group rows are mutably borrowed.
#[derive(Debug)]
pub struct ArenaRows<'a> {
    /// The gaps between (and around) the group rows, in arena order.
    segments: Vec<&'a [u64]>,
    /// Row index at which each segment begins.
    seg_starts: Vec<usize>,
    /// The sorted group rows (not readable through this view).
    group: Vec<usize>,
    stride: usize,
    num_patterns: usize,
}

impl ArenaRows<'_> {
    /// Read access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is a member of the split group or out of range.
    pub fn row(&self, i: usize) -> &[u64] {
        let k = self.group.partition_point(|&g| g < i);
        assert!(
            self.group.get(k) != Some(&i),
            "row {i} is mutably borrowed by the split group"
        );
        let start = self.seg_starts[k];
        let offset = (i - start) * self.stride;
        &self.segments[k][offset..offset + self.stride]
    }

    /// A [`SigRef`] view of row `i` (same restrictions as
    /// [`ArenaRows::row`]).
    pub fn sig(&self, i: usize) -> SigRef<'_> {
        SigRef {
            words: self.row(i),
            len: self.num_patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_strided_and_masked() {
        let mut arena = SignatureArena::new(3, 65);
        assert_eq!(arena.stride(), 2);
        assert_eq!(arena.num_rows(), 3);
        arena.row_mut(1).fill(u64::MAX);
        arena.mask_row_tail(1);
        arena.mark_written(1);
        assert_eq!(arena.row(1), &[u64::MAX, 1]);
        let sig = arena.sig(1);
        assert_eq!(sig.len(), 65);
        assert_eq!(sig.count_ones(), 65);
        assert!(sig.is_const1());
        assert!(!sig.is_const0());
        assert!(arena.sig(0).is_const0());
    }

    #[test]
    fn generation_tags_track_staleness() {
        let mut arena = SignatureArena::new(2, 64);
        assert!(arena.is_stale(0));
        arena.mark_written(0);
        assert!(!arena.is_stale(0));
        arena.grow_patterns(70);
        assert!(arena.is_stale(0), "growth invalidates old rows");
        assert_eq!(arena.generation(0), 64);
        arena.mark_written(0);
        assert!(!arena.is_stale(0));
    }

    #[test]
    fn grow_restrides_preserving_bits() {
        let mut arena = SignatureArena::new(2, 3);
        arena.set_bit(0, 1, true);
        arena.set_bit(1, 2, true);
        arena.grow_patterns(130);
        assert_eq!(arena.stride(), 3);
        assert!(arena.sig(0).get_bit(1));
        assert!(arena.sig(1).get_bit(2));
        assert_eq!(arena.sig(0).count_ones(), 1);
        arena.set_bit(0, 129, true);
        assert!(arena.sig(0).get_bit(129));
    }

    #[test]
    fn split_rows_reads_around_the_group() {
        let mut arena = SignatureArena::new(5, 64);
        for i in 0..5 {
            arena.row_mut(i).fill(i as u64);
        }
        let (mut rows, reader) = arena.split_rows(&[1, 3]);
        assert_eq!(rows.len(), 2);
        assert_eq!(reader.row(0), &[0]);
        assert_eq!(reader.row(2), &[2]);
        assert_eq!(reader.row(4), &[4]);
        rows[0].fill(10);
        rows[1].fill(30);
        drop(rows);
        drop(reader);
        assert_eq!(arena.row(1), &[10]);
        assert_eq!(arena.row(3), &[30]);
    }

    #[test]
    #[should_panic(expected = "mutably borrowed")]
    fn split_rows_rejects_reading_group_rows() {
        let mut arena = SignatureArena::new(3, 8);
        let (_rows, reader) = arena.split_rows(&[1]);
        let _ = reader.row(1);
    }

    #[test]
    fn sigref_matches_signature_semantics() {
        let sig = Signature::from_bits([true, false, true, true, false]);
        let view = SigRef::new(sig.words(), sig.len());
        assert_eq!(view.len(), 5);
        assert_eq!(view.count_ones(), 3);
        assert!(view.get_bit(0));
        assert!(!view.get_bit(1));
        assert_eq!(view.to_signature(), sig);
        assert!(view == sig);
        assert!(sig == view);
    }

    #[test]
    fn set_signature_round_trips() {
        let sig = Signature::from_bits((0..100).map(|i| i % 3 == 0));
        let mut arena = SignatureArena::new(2, 100);
        arena.set_signature(1, &sig);
        assert!(!arena.is_stale(1));
        assert_eq!(arena.to_signature(1), sig);
    }
}
