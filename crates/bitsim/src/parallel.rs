//! Shared machinery for level-scheduled parallel simulation.
//!
//! Both the word-parallel AIG simulator here and the STP simulator in the
//! `stp-sweep` crate parallelise the same way: nodes are grouped by
//! topological level (so every fanin of a level-`l` node is finished before
//! level `l` starts), and within one level the signature word arrays are
//! split into contiguous chunks that `std::thread::scope` workers fill
//! independently.  Because every worker executes exactly the word operations
//! the sequential evaluator would execute — just on a sub-range of words —
//! the result is bit-identical to a sequential run, for any thread count.
//!
//! This module holds the scheduling helpers; the per-node word kernels stay
//! with their simulators.

use std::ops::Range;

/// Minimum number of node·word work items a level must have before it is
/// worth spawning scoped threads for it.  Levels below the grain are
/// evaluated inline on the calling thread (spawning costs more than the
/// level's work); the evaluation itself is identical either way.
pub const PARALLEL_GRAIN: usize = 4096;

/// Splits `num_words` signature words into at most `num_threads` contiguous,
/// non-empty chunks of near-equal size.
///
/// Returns an empty vector when there is nothing to split.
pub fn word_chunks(num_words: usize, num_threads: usize) -> Vec<Range<usize>> {
    if num_words == 0 || num_threads == 0 {
        return Vec::new();
    }
    let chunks = num_threads.min(num_words);
    let base = num_words / chunks;
    let extra = num_words % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits every per-node output buffer of one level at the given word
/// ranges: the result has one entry per range, holding — for every node of
/// the level, in order — the mutable word sub-slice that the corresponding
/// worker fills.
///
/// # Panics
///
/// Panics if the ranges do not exactly tile each buffer.
pub fn split_level_buffers<'a>(
    buffers: &'a mut [Vec<u64>],
    ranges: &[Range<usize>],
) -> Vec<Vec<&'a mut [u64]>> {
    let mut parts: Vec<Vec<&'a mut [u64]>> = ranges
        .iter()
        .map(|_| Vec::with_capacity(buffers.len()))
        .collect();
    for buffer in buffers.iter_mut() {
        let mut rest: &mut [u64] = buffer.as_mut_slice();
        let mut consumed = 0usize;
        for (part, range) in parts.iter_mut().zip(ranges.iter()) {
            assert_eq!(range.start, consumed, "ranges must tile the buffer");
            let (head, tail) = rest.split_at_mut(range.len());
            part.push(head);
            rest = tail;
            consumed = range.end;
        }
        assert!(rest.is_empty(), "ranges must cover the whole buffer");
    }
    parts
}

/// Evaluates one level: allocates a zeroed `num_words`-word output buffer
/// per node and fills them through `kernel(node, word_lo, out)`, which must
/// write words `word_lo .. word_lo + out.len()` of `node`'s signature.
///
/// Levels whose total work (`nodes × words`) is below [`PARALLEL_GRAIN`],
/// or that cannot be split into at least two word chunks, run inline on the
/// calling thread; larger levels run the kernel across
/// [`std::thread::scope`] workers, one contiguous word chunk each.  Either
/// way the kernel executes exactly once per (node, word) pair, so the
/// result is independent of `num_threads`.
pub fn evaluate_level<K>(
    nodes: &[usize],
    num_words: usize,
    num_threads: usize,
    kernel: &K,
) -> Vec<Vec<u64>>
where
    K: Fn(usize, usize, &mut [u64]) + Sync,
{
    let mut buffers: Vec<Vec<u64>> = nodes.iter().map(|_| vec![0u64; num_words]).collect();
    let ranges = word_chunks(num_words, num_threads);
    if ranges.len() < 2 || nodes.len() * num_words < PARALLEL_GRAIN {
        for (buffer, &id) in buffers.iter_mut().zip(nodes) {
            kernel(id, 0, buffer);
        }
        return buffers;
    }
    let parts = split_level_buffers(&mut buffers, &ranges);
    std::thread::scope(|scope| {
        for (part, range) in parts.into_iter().zip(ranges.iter()) {
            scope.spawn(move || {
                for (slice, &id) in part.into_iter().zip(nodes.iter()) {
                    kernel(id, range.start, slice);
                }
            });
        }
    });
    buffers
}

/// One deterministic work item of a stolen level evaluation: a contiguous
/// word sub-range of one node's signature row.
struct StealItem<'a> {
    node: usize,
    word_lo: usize,
    out: &'a mut [u64],
}

/// Evaluates one level directly into arena rows with **cost-modeled chunked
/// work stealing**, and returns the number of steal events.
///
/// `rows` holds one mutable full-width signature row per level node (as
/// produced by `SignatureArena::split_rows`), `nodes` the matching node ids
/// handed to the kernel, and `costs` a per-word relative evaluation cost per
/// node (e.g. `1` for an AIG AND, `1 << k` for a `k`-input LUT).  The level
/// is partitioned — deterministically, before any thread runs — into
/// roughly `4 × num_threads` chunks of near-equal *cost* (a single
/// expensive node is split at word granularity across chunks), and workers
/// claim chunks through an atomic cursor: a worker that finishes its share
/// early steals the next unclaimed chunk instead of idling, so skewed
/// levels no longer run at the pace of the unluckiest thread.
///
/// Because the chunk partition is fixed and every (node, word) pair is
/// written by exactly one chunk, the result is bit-identical for any thread
/// count and any steal schedule; only the returned steal count (claims
/// beyond each worker's first) is timing-dependent.  Levels below
/// [`PARALLEL_GRAIN`] run inline and report zero steals.
///
/// # Panics
///
/// Panics if `rows`, `nodes` and `costs` disagree in length.
pub fn evaluate_level_stealing<K>(
    rows: Vec<&mut [u64]>,
    nodes: &[usize],
    costs: &[u64],
    num_threads: usize,
    kernel: &K,
) -> u64
where
    K: Fn(usize, usize, &mut [u64]) + Sync,
{
    assert_eq!(rows.len(), nodes.len());
    assert_eq!(rows.len(), costs.len());
    if rows.is_empty() {
        return 0;
    }
    let num_words = rows[0].len();
    if num_threads < 2 || rows.len() * num_words < PARALLEL_GRAIN {
        for (out, &id) in rows.into_iter().zip(nodes) {
            kernel(id, 0, out);
        }
        return 0;
    }

    // Deterministic cost-balanced partition into ~4 chunks per thread.
    let total_cost: u64 = costs.iter().map(|&c| c.max(1) * num_words as u64).sum();
    let chunk_target = total_cost.div_ceil(num_threads as u64 * 4).max(1);
    let mut chunks: Vec<Vec<StealItem<'_>>> = Vec::new();
    let mut current: Vec<StealItem<'_>> = Vec::new();
    let mut current_cost = 0u64;
    for (i, row) in rows.into_iter().enumerate() {
        let cost = costs[i].max(1);
        let mut word_lo = 0usize;
        let mut rest = row;
        while !rest.is_empty() {
            let room = chunk_target.saturating_sub(current_cost).max(cost);
            let take = room.div_ceil(cost).min(rest.len() as u64) as usize;
            let (head, tail) = rest.split_at_mut(take);
            current.push(StealItem {
                node: nodes[i],
                word_lo,
                out: head,
            });
            current_cost += take as u64 * cost;
            word_lo += take;
            rest = tail;
            if current_cost >= chunk_target {
                chunks.push(std::mem::take(&mut current));
                current_cost = 0;
            }
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let slots: Vec<Mutex<Option<Vec<StealItem<'_>>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let workers = num_threads.min(slots.len());
    let claims: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = 0u64;
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= slots.len() {
                            break;
                        }
                        let taken = slots[idx]
                            .lock()
                            .expect("a chunk mutex is never poisoned")
                            .take();
                        if let Some(items) = taken {
                            for item in items {
                                kernel(item.node, item.word_lo, item.out);
                            }
                            claimed += 1;
                        }
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("a steal worker never panics"))
            .collect()
    });
    claims.iter().map(|&c| c.saturating_sub(1)).sum()
}

/// Fills one node's output words `word_lo .. word_lo + out.len()` by
/// per-pattern table lookup: for every pattern `p` in the chunk, an index is
/// assembled from bit `p` of each leaf word array (leaf `k` contributes bit
/// `k`) and the output bit is set when `table_bit(index)` holds.  `n` is the
/// total pattern count; `out` must be zero-initialised.
///
/// This is the kernel shared by the sparse (specified-node) evaluators —
/// window-based target simulation and cut-collapsed STP simulation — so the
/// word-boundary arithmetic that their sequential/parallel bit-identity
/// depends on lives in exactly one place.
pub fn lookup_kernel(
    table_bit: impl Fn(usize) -> bool,
    leaf_words: &[&[u64]],
    n: usize,
    word_lo: usize,
    out: &mut [u64],
) {
    let p_lo = word_lo * 64;
    let p_hi = ((word_lo + out.len()) * 64).min(n);
    for p in p_lo..p_hi {
        let mut index = 0usize;
        for (k, lw) in leaf_words.iter().enumerate() {
            index |= (((lw[p / 64] >> (p % 64)) & 1) as usize) << k;
        }
        if table_bit(index) {
            out[p / 64 - word_lo] |= 1u64 << (p % 64);
        }
    }
}

/// Groups node ids by topological level: `groups[l]` lists the ids with
/// level `l`, in ascending id order.
pub fn group_by_level(levels: &[usize]) -> Vec<Vec<usize>> {
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (id, &level) in levels.iter().enumerate() {
        groups[level].push(id);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_chunks_tile_the_range() {
        for num_words in [0usize, 1, 3, 7, 64, 100] {
            for num_threads in [1usize, 2, 3, 8, 200] {
                let ranges = word_chunks(num_words, num_threads);
                if num_words == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= num_threads);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, num_words);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                // Near-equal: sizes differ by at most one word.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn split_level_buffers_partitions_each_buffer() {
        let mut buffers = vec![vec![0u64; 10], vec![0u64; 10]];
        let ranges = word_chunks(10, 3);
        let mut parts = split_level_buffers(&mut buffers, &ranges);
        assert_eq!(parts.len(), 3);
        for (t, part) in parts.iter_mut().enumerate() {
            assert_eq!(part.len(), 2, "one slice per node");
            for slice in part.iter_mut() {
                for w in slice.iter_mut() {
                    *w = t as u64 + 1;
                }
            }
        }
        drop(parts);
        // Every word was written by exactly one chunk, in range order.
        for buffer in &buffers {
            let expected: Vec<u64> = ranges
                .iter()
                .enumerate()
                .flat_map(|(t, r)| std::iter::repeat(t as u64 + 1).take(r.len()))
                .collect();
            assert_eq!(buffer, &expected);
        }
    }

    #[test]
    fn lookup_kernel_assembles_indices_and_respects_chunks() {
        // Two leaves, table = XOR (bits 01 and 10 set), 100 patterns.
        let n = 100usize;
        let a: Vec<u64> = vec![0xAAAA_AAAA_AAAA_AAAA, 0xAAAA_AAAA_AAAA_AAAA];
        let b: Vec<u64> = vec![0xFFFF_0000_FFFF_0000, 0xFFFF_0000_FFFF_0000];
        let leaves: Vec<&[u64]> = vec![&a, &b];
        let xor = |index: usize| index == 1 || index == 2;
        let mut whole = vec![0u64; 2];
        lookup_kernel(xor, &leaves, n, 0, &mut whole);
        // Chunked evaluation must tile to the same words.
        let mut lo = vec![0u64; 1];
        let mut hi = vec![0u64; 1];
        lookup_kernel(xor, &leaves, n, 0, &mut lo);
        lookup_kernel(xor, &leaves, n, 1, &mut hi);
        assert_eq!(whole, vec![lo[0], hi[0]]);
        // Bits beyond the pattern count stay clear.
        assert_eq!(whole[1] >> (n - 64), 0);
        // Spot-check pattern 0 (a=0, b=0 -> index 0 -> clear) and pattern 1
        // (a=1, b=0 -> index 1 -> set).
        assert_eq!(whole[0] & 1, 0);
        assert_eq!((whole[0] >> 1) & 1, 1);
    }

    #[test]
    fn group_by_level_orders_ids() {
        let groups = group_by_level(&[0, 0, 1, 0, 2, 1]);
        assert_eq!(groups, vec![vec![0, 1, 3], vec![2, 5], vec![4]]);
    }

    #[test]
    fn evaluate_level_stealing_is_thread_count_invariant() {
        // Skewed costs force word-granular splitting of the heavy nodes;
        // every (node, word) pair must still be stamped exactly once.
        let nodes: Vec<usize> = (0..96).collect();
        let costs: Vec<u64> = nodes.iter().map(|&i| 1 << (i % 7)).collect();
        let num_words = 60usize;
        let kernel = |node: usize, word_lo: usize, out: &mut [u64]| {
            for (i, w) in out.iter_mut().enumerate() {
                // Accumulate instead of assign so a double write is caught.
                *w += (node as u64) << 32 | (word_lo + i) as u64;
            }
        };
        let mut reference: Vec<Vec<u64>> = Vec::new();
        for num_threads in [1usize, 2, 4, 8] {
            let mut storage: Vec<Vec<u64>> = nodes.iter().map(|_| vec![0u64; num_words]).collect();
            let rows: Vec<&mut [u64]> = storage.iter_mut().map(|b| b.as_mut_slice()).collect();
            let steals = evaluate_level_stealing(rows, &nodes, &costs, num_threads, &kernel);
            if num_threads == 1 {
                assert_eq!(steals, 0, "inline path reports no steals");
                reference = storage.clone();
            }
            assert_eq!(storage, reference, "{num_threads} threads");
        }
        for (j, row) in reference.iter().enumerate() {
            for (w, &value) in row.iter().enumerate() {
                assert_eq!(value, (j as u64) << 32 | w as u64);
            }
        }
    }

    #[test]
    fn evaluate_level_stealing_handles_small_and_empty_levels() {
        assert_eq!(
            evaluate_level_stealing(Vec::new(), &[], &[], 4, &|_, _, _: &mut [u64]| {}),
            0
        );
        let mut row = vec![0u64; 3];
        let steals = evaluate_level_stealing(
            vec![row.as_mut_slice()],
            &[7],
            &[1],
            4,
            &|node, word_lo, out| {
                assert_eq!((node, word_lo), (7, 0));
                out.fill(5);
            },
        );
        assert_eq!(steals, 0);
        assert_eq!(row, vec![5, 5, 5]);
    }

    #[test]
    fn evaluate_level_runs_kernel_once_per_node_and_word() {
        // A kernel that stamps node ^ word; with enough work to cross the
        // grain and little enough to stay inline, the result must be the
        // same.
        let nodes: Vec<usize> = (0..80).collect();
        for (num_words, num_threads) in [(1usize, 1usize), (7, 3), (64, 4), (100, 8)] {
            let buffers = evaluate_level(&nodes, num_words, num_threads, &|node, word_lo, out| {
                for (i, w) in out.iter_mut().enumerate() {
                    *w = (node as u64) << 32 | (word_lo + i) as u64;
                }
            });
            assert_eq!(buffers.len(), nodes.len());
            for (j, buffer) in buffers.iter().enumerate() {
                assert_eq!(buffer.len(), num_words);
                for (w, &value) in buffer.iter().enumerate() {
                    assert_eq!(value, (j as u64) << 32 | w as u64, "{num_threads} threads");
                }
            }
        }
    }
}
