//! # cosplit — the online co-split statistic behind refinement-aware batching
//!
//! SAT-sweeping commits counter-examples one at a time, and every committed
//! counter-example refines *all* candidate equivalence classes at once.  Two
//! classes that keep splitting on the same counter-examples are entangled:
//! speculatively proving candidates from both in one batch wastes the later
//! slot, because the earlier candidate's counter-example invalidates it.  Two
//! classes that never co-split are (empirically) independent and batch well
//! even when their structural supports overlap — which is exactly the case
//! PI-support-disjoint batching gives up on for arithmetic circuits.
//!
//! [`CoSplitTable`] learns that statistic online.  Each committed
//! counter-example reports the set of class representatives it split (one
//! *event*); the table counts per-representative splits and ordered-pair
//! co-splits.  Each committed *proof* (an UNSAT SAT call against a class
//! member) is also recorded ([`CoSplitTable::record_proof`]) — a class that
//! keeps surviving committed SAT queries without splitting is stable, and
//! stability is the common case on arithmetic circuits where disproofs are
//! rare but supports overlap everywhere.  A class's *observation* count is
//! its splits plus its survived proofs.  [`CoSplitTable::independent`] then
//! answers the batching question with three-valued logic:
//!
//! * `Some(false)` — the pair has co-split before: do not batch them.
//! * `Some(true)`  — both classes have been observed (split or survived a
//!   proof) at least `min_obs` times and never split together: batch freely.
//! * `None`        — not enough evidence either way: the caller falls back to
//!   its prior (support disjointness).
//!
//! The table is fed only from *committed* refinements, so its contents — and
//! therefore every batch formed from it — are identical for every worker
//! count, batch policy and shard count (see the determinism contract in
//! `ARCHITECTURE.md`).  [`CoSplitTable::snapshot`] produces a canonical
//! sorted form for the checkpoint codec so that resumed runs keep forming
//! the same batches as uninterrupted ones.
//!
//! ```
//! use bitsim::CoSplitTable;
//!
//! let mut table = CoSplitTable::new();
//! table.record_event(&[3, 7]); // one CE split the classes of reps 3 and 7
//! table.record_event(&[3]);
//! table.record_proof(9); // the class of rep 9 survived a committed proof
//! table.record_proof(9);
//!
//! assert_eq!(table.splits(3), 2);
//! assert_eq!(table.cosplits(3, 7), 1);
//! assert_eq!(table.observations(9), 2);
//! assert_eq!(table.independent(3, 7, 2), Some(false)); // co-split before
//! assert_eq!(table.independent(3, 9, 2), Some(true)); // both seen, never together
//! assert_eq!(table.independent(3, 11, 2), None); // rep 11 never observed
//! ```

use netlist::NodeId;
use std::collections::HashMap;

/// Pairwise counts are only recorded among the first `MAX_PAIR_EVENT` (sorted)
/// representatives of an event.  A counter-example that shatters hundreds of
/// classes carries almost no pairwise signal (everything co-splits with
/// everything), and recording it would cost O(k²) table entries; the per-rep
/// split counts are still recorded in full.
pub const MAX_PAIR_EVENT: usize = 64;

/// Online per-class split statistics fed from committed counter-example
/// refinements.  See the [module docs](self) for the batching semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoSplitTable {
    /// How many committed counter-examples split the class of each rep.
    splits: HashMap<NodeId, u32>,
    /// How many committed SAT proofs each rep's class survived unsplit.
    proofs: HashMap<NodeId, u32>,
    /// How many committed counter-examples split both classes of a rep pair
    /// (keyed with the smaller rep first).
    cosplits: HashMap<(NodeId, NodeId), u32>,
    /// Total number of recorded events.
    events: u64,
}

/// A canonical (sorted) serializable form of a [`CoSplitTable`], used by the
/// `stp-sweep` checkpoint codec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoSplitSnapshot {
    /// `(representative, split count)` pairs, sorted by representative.
    pub splits: Vec<(NodeId, u32)>,
    /// `(representative, survived proof count)` pairs, sorted.
    pub proofs: Vec<(NodeId, u32)>,
    /// `(rep_a, rep_b, co-split count)` triples with `rep_a < rep_b`, sorted.
    pub cosplits: Vec<(NodeId, NodeId, u32)>,
    /// Total number of recorded events.
    pub events: u64,
}

impl CoSplitTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one committed counter-example event: `reps` is the set of
    /// representatives (of the classes that the counter-example split),
    /// deduplicated.  Order does not matter.
    pub fn record_event(&mut self, reps: &[NodeId]) {
        if reps.is_empty() {
            return;
        }
        self.events += 1;
        let mut sorted: Vec<NodeId> = reps.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &r in &sorted {
            *self.splits.entry(r).or_insert(0) += 1;
        }
        let pairwise = &sorted[..sorted.len().min(MAX_PAIR_EVENT)];
        for (i, &a) in pairwise.iter().enumerate() {
            for &b in &pairwise[i + 1..] {
                *self.cosplits.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Records one committed SAT proof that the class of `rep` survived
    /// without splitting (an UNSAT query against one of its members).
    pub fn record_proof(&mut self, rep: NodeId) {
        *self.proofs.entry(rep).or_insert(0) += 1;
    }

    /// How many committed counter-examples split the class of `rep`.
    pub fn splits(&self, rep: NodeId) -> u32 {
        self.splits.get(&rep).copied().unwrap_or(0)
    }

    /// How many committed SAT proofs the class of `rep` survived unsplit.
    pub fn proofs(&self, rep: NodeId) -> u32 {
        self.proofs.get(&rep).copied().unwrap_or(0)
    }

    /// Total committed observations of `rep`'s class: splits plus survived
    /// proofs.  The batching evidence threshold is measured against this.
    pub fn observations(&self, rep: NodeId) -> u32 {
        self.splits(rep).saturating_add(self.proofs(rep))
    }

    /// How many committed counter-examples split the classes of both `a` and
    /// `b` (symmetric).
    pub fn cosplits(&self, a: NodeId, b: NodeId) -> u32 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.cosplits.get(&key).copied().unwrap_or(0)
    }

    /// Total number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Three-valued independence verdict for batching the classes of `a` and
    /// `b` together: `Some(false)` if they have ever co-split, `Some(true)`
    /// if both have at least `min_obs` [`observations`](Self::observations)
    /// (splits or survived proofs) and never co-split, `None` when there is
    /// not enough evidence (caller falls back to its prior).  `a == b` is
    /// never independent.
    pub fn independent(&self, a: NodeId, b: NodeId, min_obs: u32) -> Option<bool> {
        if a == b {
            return Some(false);
        }
        if self.cosplits(a, b) > 0 {
            return Some(false);
        }
        if self.observations(a).min(self.observations(b)) >= min_obs {
            return Some(true);
        }
        None
    }

    /// Canonical sorted snapshot for serialization.
    pub fn snapshot(&self) -> CoSplitSnapshot {
        let mut splits: Vec<(NodeId, u32)> = self.splits.iter().map(|(&r, &c)| (r, c)).collect();
        splits.sort_unstable();
        let mut proofs: Vec<(NodeId, u32)> = self.proofs.iter().map(|(&r, &c)| (r, c)).collect();
        proofs.sort_unstable();
        let mut cosplits: Vec<(NodeId, NodeId, u32)> = self
            .cosplits
            .iter()
            .map(|(&(a, b), &c)| (a, b, c))
            .collect();
        cosplits.sort_unstable();
        CoSplitSnapshot {
            splits,
            proofs,
            cosplits,
            events: self.events,
        }
    }

    /// Rebuilds a table from a snapshot.
    pub fn from_snapshot(snap: &CoSplitSnapshot) -> Self {
        Self {
            splits: snap.splits.iter().copied().collect(),
            proofs: snap.proofs.iter().copied().collect(),
            cosplits: snap.cosplits.iter().map(|&(a, b, c)| ((a, b), c)).collect(),
            events: snap.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_event_counts_splits_and_pairs() {
        let mut t = CoSplitTable::new();
        t.record_event(&[5, 2, 2, 9]); // duplicates collapse
        t.record_event(&[2]);
        assert_eq!(t.events(), 2);
        assert_eq!(t.splits(2), 2);
        assert_eq!(t.splits(5), 1);
        assert_eq!(t.splits(9), 1);
        assert_eq!(t.splits(42), 0);
        assert_eq!(t.cosplits(2, 5), 1);
        assert_eq!(t.cosplits(5, 2), 1); // symmetric
        assert_eq!(t.cosplits(5, 9), 1);
        assert_eq!(t.cosplits(2, 42), 0);
    }

    #[test]
    fn empty_events_are_ignored() {
        let mut t = CoSplitTable::new();
        t.record_event(&[]);
        assert_eq!(t.events(), 0);
        assert_eq!(t, CoSplitTable::new());
    }

    #[test]
    fn independence_three_valued_logic() {
        let mut t = CoSplitTable::new();
        t.record_event(&[1, 2]);
        t.record_event(&[1]);
        t.record_event(&[3]);
        t.record_event(&[3]);
        // co-split once => dependent regardless of counts
        assert_eq!(t.independent(1, 2, 1), Some(false));
        // both observed >= min_obs, never together => independent
        assert_eq!(t.independent(1, 3, 2), Some(true));
        // raise the bar and the evidence is insufficient
        assert_eq!(t.independent(1, 3, 3), None);
        // unobserved rep => no evidence
        assert_eq!(t.independent(1, 99, 1), None);
        // a class is never independent of itself
        assert_eq!(t.independent(3, 3, 1), Some(false));
    }

    #[test]
    fn survived_proofs_count_as_observations() {
        let mut t = CoSplitTable::new();
        t.record_proof(4);
        t.record_proof(4);
        t.record_proof(8);
        assert_eq!(t.proofs(4), 2);
        assert_eq!(t.splits(4), 0);
        assert_eq!(t.observations(4), 2);
        // 8 has only one observation: below the bar
        assert_eq!(t.independent(4, 8, 2), None);
        t.record_proof(8);
        // two stable classes that never co-split are independent
        assert_eq!(t.independent(4, 8, 2), Some(true));
        // splits and proofs pool into one observation count
        t.record_event(&[6]);
        t.record_proof(6);
        assert_eq!(t.observations(6), 2);
        assert_eq!(t.independent(4, 6, 2), Some(true));
        // proofs never create pairwise entanglement
        assert_eq!(t.cosplits(4, 8), 0);
        // events only counts counter-example refinements
        assert_eq!(t.events(), 1);
    }

    #[test]
    fn oversized_events_skip_tail_pairs_but_count_all_splits() {
        let mut t = CoSplitTable::new();
        let reps: Vec<NodeId> = (0..MAX_PAIR_EVENT + 8).collect();
        t.record_event(&reps);
        for &r in &reps {
            assert_eq!(t.splits(r), 1);
        }
        // pairs among the first MAX_PAIR_EVENT sorted reps only
        assert_eq!(t.cosplits(0, MAX_PAIR_EVENT - 1), 1);
        assert_eq!(t.cosplits(0, MAX_PAIR_EVENT), 0);
    }

    #[test]
    fn snapshot_round_trips_and_is_canonical() {
        let mut t = CoSplitTable::new();
        t.record_event(&[7, 3]);
        t.record_event(&[3, 11]);
        t.record_event(&[5]);
        t.record_proof(9);
        t.record_proof(2);
        let snap = t.snapshot();
        assert!(snap.splits.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(snap.proofs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(snap
            .cosplits
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let back = CoSplitTable::from_snapshot(&snap);
        assert_eq!(back, t);
        assert_eq!(back.snapshot(), snap);
    }
}
