//! Word-parallel simulation of And-Inverter Graphs.

use crate::{PatternSet, Signature};
use netlist::{Aig, AigNode, NodeId};

/// The word-parallel AND of two fanin signatures with complements applied as
/// branchless XOR masks; `words` bounds the output length.
fn and_words(s0: &Signature, c0: bool, s1: &Signature, c1: bool, words: usize) -> Vec<u64> {
    let m0 = if c0 { u64::MAX } else { 0 };
    let m1 = if c1 { u64::MAX } else { 0 };
    s0.words()
        .iter()
        .zip(s1.words())
        .take(words)
        .map(|(&a, &b)| (a ^ m0) & (b ^ m1))
        .collect()
}

/// Simulation state: one packed signature per AIG node.
#[derive(Debug, Clone)]
pub struct AigSimState {
    signatures: Vec<Signature>,
    num_patterns: usize,
}

impl AigSimState {
    /// The signature of `node`.
    pub fn signature(&self, node: NodeId) -> &Signature {
        &self.signatures[node]
    }

    /// The signature seen at output `index` of `aig` (complement applied).
    pub fn output_signature(&self, aig: &Aig, index: usize) -> Signature {
        let output = &aig.outputs()[index];
        let sig = &self.signatures[output.lit.node()];
        if output.lit.is_complemented() {
            sig.complement()
        } else {
            sig.clone()
        }
    }

    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// All node signatures, indexed by node id.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }
}

/// Word-parallel AIG simulator: 64 patterns per machine word, one word-level
/// AND/NOT per node per word (Section II-A of the paper).
///
/// The simulator is stateless apart from the network reference; [`run`] and
/// [`run_incremental`] return an [`AigSimState`] holding all signatures.
///
/// [`run`]: AigSimulator::run
/// [`run_incremental`]: AigSimulator::run_incremental
#[derive(Debug, Clone, Copy)]
pub struct AigSimulator<'a> {
    aig: &'a Aig,
}

impl<'a> AigSimulator<'a> {
    /// Creates a simulator for the given AIG.
    pub fn new(aig: &'a Aig) -> Self {
        AigSimulator { aig }
    }

    /// Simulates all nodes under the pattern set.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn run(&self, patterns: &PatternSet) -> AigSimState {
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let words = n.div_ceil(64).max(1);
        let mut signatures: Vec<Signature> = Vec::with_capacity(self.aig.num_nodes());
        for id in self.aig.node_ids() {
            let sig = match self.aig.node(id) {
                AigNode::Const0 => Signature::zeros(n),
                AigNode::Input { position } => patterns.input_signature(*position).clone(),
                AigNode::And { fanin0, fanin1 } => {
                    let s0 = &signatures[fanin0.node()];
                    let s1 = &signatures[fanin1.node()];
                    let out = and_words(
                        s0,
                        fanin0.is_complemented(),
                        s1,
                        fanin1.is_complemented(),
                        words,
                    );
                    Signature::from_words(n, out)
                }
            };
            signatures.push(sig);
        }
        AigSimState {
            signatures,
            num_patterns: n,
        }
    }

    /// Incremental re-simulation: appends the patterns of `extra` to an
    /// existing state, re-computing only the newly added words.  This mirrors
    /// the "re-computing only the last block of TT" optimisation the paper
    /// attributes to Mockturtle.
    ///
    /// # Panics
    ///
    /// Panics if `extra` has a different input count than the AIG.
    pub fn run_incremental(&self, state: &AigSimState, extra: &PatternSet) -> AigSimState {
        assert_eq!(
            extra.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let old_n = state.num_patterns;
        let new_n = old_n + extra.num_patterns();
        let mut signatures = Vec::with_capacity(self.aig.num_nodes());
        for id in self.aig.node_ids() {
            let sig = match self.aig.node(id) {
                AigNode::Const0 => Signature::zeros(new_n),
                AigNode::Input { position } => {
                    let mut s = state.signatures[id].clone();
                    let extra_sig = extra.input_signature(*position);
                    let mut grown = Signature::zeros(new_n);
                    for i in 0..old_n {
                        if s.get_bit(i) {
                            grown.set_bit(i, true);
                        }
                    }
                    for i in 0..extra.num_patterns() {
                        if extra_sig.get_bit(i) {
                            grown.set_bit(old_n + i, true);
                        }
                    }
                    s = grown;
                    s
                }
                AigNode::And { fanin0, fanin1 } => {
                    let s0: &Signature = &signatures[fanin0.node()];
                    let s1: &Signature = &signatures[fanin1.node()];
                    let words = new_n.div_ceil(64).max(1);
                    let out = and_words(
                        s0,
                        fanin0.is_complemented(),
                        s1,
                        fanin1.is_complemented(),
                        words,
                    );
                    Signature::from_words(new_n, out)
                }
            };
            signatures.push(sig);
        }
        AigSimState {
            signatures,
            num_patterns: new_n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g = aig.and(a, b);
        let h = aig.xor(g, c);
        aig.add_output("and", g);
        aig.add_output("xor", h);
        aig
    }

    #[test]
    fn matches_reference_evaluation() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(3);
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in 0..8 {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            for (o, &value) in expected.iter().enumerate() {
                assert_eq!(
                    state.output_signature(&aig, o).get_bit(p),
                    value,
                    "output {o}, pattern {p}"
                );
            }
        }
    }

    #[test]
    fn random_patterns_match_reference() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 200, 42);
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in (0..200).step_by(17) {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            assert_eq!(state.output_signature(&aig, 1).get_bit(p), expected[1]);
        }
    }

    #[test]
    fn incremental_matches_full_resimulation() {
        let aig = sample_aig();
        let base = PatternSet::random(3, 100, 1);
        let extra = PatternSet::random(3, 37, 2);
        let sim = AigSimulator::new(&aig);
        let state = sim.run(&base);
        let incremental = sim.run_incremental(&state, &extra);

        let mut combined = base.clone();
        combined.extend(&extra);
        let full = sim.run(&combined);
        for id in aig.node_ids() {
            assert_eq!(incremental.signature(id), full.signature(id), "node {id}");
        }
        assert_eq!(incremental.num_patterns(), 137);
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn wrong_input_count_panics() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(2);
        let _ = AigSimulator::new(&aig).run(&patterns);
    }
}
