//! Word-parallel simulation of And-Inverter Graphs.
//!
//! Signatures live in a [`SignatureArena`] — one contiguous node-major
//! allocation instead of one heap `Vec` per node — so a full simulation
//! pass performs O(1) allocations and the AND kernel streams through
//! stride-contiguous rows (see [`crate::arena`]).

use crate::arena::{SigRef, SignatureArena};
use crate::{kernels, parallel, PatternSet, Signature};
use netlist::{Aig, AigNode, NodeId};

/// Complement mask of an AIG literal: XORing a signature word with the mask
/// applies the complement branchlessly.
#[inline]
fn mask(complemented: bool) -> u64 {
    if complemented {
        u64::MAX
    } else {
        0
    }
}

/// Simulation state: the packed signatures of every AIG node, stored in a
/// struct-of-arrays [`SignatureArena`].
#[derive(Debug, Clone)]
pub struct AigSimState {
    arena: SignatureArena,
    steal_events: u64,
}

impl AigSimState {
    /// A borrowed view of the signature of `node`.
    pub fn signature(&self, node: NodeId) -> SigRef<'_> {
        self.arena.sig(node)
    }

    /// The signature seen at output `index` of `aig` (complement applied).
    pub fn output_signature(&self, aig: &Aig, index: usize) -> Signature {
        let output = &aig.outputs()[index];
        let sig = self.arena.to_signature(output.lit.node());
        if output.lit.is_complemented() {
            sig.complement()
        } else {
            sig
        }
    }

    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.arena.num_patterns()
    }

    /// The backing signature arena.
    pub fn arena(&self) -> &SignatureArena {
        &self.arena
    }

    /// Number of work-stealing events the producing run observed (0 for
    /// sequential runs; see [`parallel::evaluate_level_stealing`]).
    pub fn steal_events(&self) -> u64 {
        self.steal_events
    }
}

/// Word-parallel AIG simulator: 64 patterns per machine word, one word-level
/// AND/NOT per node per word (Section II-A of the paper).
///
/// The simulator is stateless apart from the network reference; [`run`] and
/// [`run_incremental`] return an [`AigSimState`] holding all signatures.
///
/// [`run`]: AigSimulator::run
/// [`run_incremental`]: AigSimulator::run_incremental
#[derive(Debug, Clone, Copy)]
pub struct AigSimulator<'a> {
    aig: &'a Aig,
}

impl<'a> AigSimulator<'a> {
    /// Creates a simulator for the given AIG.
    pub fn new(aig: &'a Aig) -> Self {
        AigSimulator { aig }
    }

    /// Simulates all nodes under the pattern set.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn run(&self, patterns: &PatternSet) -> AigSimState {
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let mut arena = SignatureArena::new(self.aig.num_nodes(), n);
        for id in self.aig.node_ids() {
            match self.aig.node(id) {
                AigNode::Const0 => {} // rows start zeroed
                AigNode::Input { position } => {
                    arena
                        .row_mut(id)
                        .copy_from_slice(patterns.input_signature(*position).words());
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (prefix, row) = arena.split_at_row(id);
                    kernels::and2_masked(
                        prefix.row(fanin0.node()),
                        prefix.row(fanin1.node()),
                        mask(fanin0.is_complemented()),
                        mask(fanin1.is_complemented()),
                        row,
                    );
                    arena.mask_row_tail(id);
                }
            }
            arena.mark_written(id);
        }
        AigSimState {
            arena,
            steal_events: 0,
        }
    }

    /// Simulates all nodes with up to `num_threads` worker threads.
    ///
    /// Nodes are grouped by topological level; within one level the arena
    /// rows are partitioned into cost-balanced chunks that workers claim
    /// through an atomic cursor (see
    /// [`parallel::evaluate_level_stealing`]).  Workers execute exactly the
    /// word operations of [`AigSimulator::run`], so the result is
    /// **bit-identical to a sequential run** for any thread count.  Levels
    /// whose work is below [`parallel::PARALLEL_GRAIN`] are evaluated
    /// inline.
    ///
    /// `num_threads <= 1` falls back to [`AigSimulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn run_parallel(&self, patterns: &PatternSet, num_threads: usize) -> AigSimState {
        if num_threads <= 1 {
            return self.run(patterns);
        }
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let mut arena = SignatureArena::new(self.aig.num_nodes(), n);
        let mut steal_events = 0u64;
        let groups = parallel::group_by_level(&self.aig.levels());
        for group in &groups {
            // Constants and inputs (always level 0) are plain copies.
            let mut and_nodes: Vec<NodeId> = Vec::with_capacity(group.len());
            for &id in group {
                match self.aig.node(id) {
                    AigNode::Const0 => arena.mark_written(id),
                    AigNode::Input { position } => {
                        arena
                            .row_mut(id)
                            .copy_from_slice(patterns.input_signature(*position).words());
                        arena.mark_written(id);
                    }
                    AigNode::And { .. } => and_nodes.push(id),
                }
            }
            if and_nodes.is_empty() {
                continue;
            }
            let aig = self.aig;
            let costs = vec![1u64; and_nodes.len()];
            let (rows, reader) = arena.split_rows(&and_nodes);
            steal_events += parallel::evaluate_level_stealing(
                rows,
                &and_nodes,
                &costs,
                num_threads,
                &|id, word_lo, out| {
                    let AigNode::And { fanin0, fanin1 } = aig.node(id) else {
                        unreachable!("and_nodes only holds AND gates");
                    };
                    let w0 = &reader.row(fanin0.node())[word_lo..word_lo + out.len()];
                    let w1 = &reader.row(fanin1.node())[word_lo..word_lo + out.len()];
                    kernels::and2_masked(
                        w0,
                        w1,
                        mask(fanin0.is_complemented()),
                        mask(fanin1.is_complemented()),
                        out,
                    );
                },
            );
            for &id in &and_nodes {
                arena.mask_row_tail(id);
                arena.mark_written(id);
            }
        }
        AigSimState {
            arena,
            steal_events,
        }
    }

    /// Incremental re-simulation: appends the patterns of `extra` to an
    /// existing state, re-computing only the newly added words.  This mirrors
    /// the "re-computing only the last block of TT" optimisation the paper
    /// attributes to Mockturtle.
    ///
    /// # Panics
    ///
    /// Panics if `extra` has a different input count than the AIG.
    pub fn run_incremental(&self, state: &AigSimState, extra: &PatternSet) -> AigSimState {
        assert_eq!(
            extra.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let old_n = state.num_patterns();
        let new_n = old_n + extra.num_patterns();
        let mut arena = SignatureArena::new(self.aig.num_nodes(), new_n);
        for id in self.aig.node_ids() {
            match self.aig.node(id) {
                AigNode::Const0 => {}
                AigNode::Input { position } => {
                    let old_words = state.arena.row(id);
                    arena.row_mut(id)[..old_words.len()].copy_from_slice(old_words);
                    let extra_sig = extra.input_signature(*position);
                    for i in 0..extra.num_patterns() {
                        if extra_sig.get_bit(i) {
                            arena.set_bit(id, old_n + i, true);
                        }
                    }
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (prefix, row) = arena.split_at_row(id);
                    kernels::and2_masked(
                        prefix.row(fanin0.node()),
                        prefix.row(fanin1.node()),
                        mask(fanin0.is_complemented()),
                        mask(fanin1.is_complemented()),
                        row,
                    );
                    arena.mask_row_tail(id);
                }
            }
            arena.mark_written(id);
        }
        AigSimState {
            arena,
            steal_events: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g = aig.and(a, b);
        let h = aig.xor(g, c);
        aig.add_output("and", g);
        aig.add_output("xor", h);
        aig
    }

    #[test]
    fn matches_reference_evaluation() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(3);
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in 0..8 {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            for (o, &value) in expected.iter().enumerate() {
                assert_eq!(
                    state.output_signature(&aig, o).get_bit(p),
                    value,
                    "output {o}, pattern {p}"
                );
            }
        }
    }

    #[test]
    fn random_patterns_match_reference() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 200, 42).unwrap();
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in (0..200).step_by(17) {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            assert_eq!(state.output_signature(&aig, 1).get_bit(p), expected[1]);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        // A deeper circuit with enough words per level to cross the grain on
        // some levels and stay below it on others.
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 12);
        let mut layer: Vec<netlist::Lit> = xs.clone();
        for round in 0..6 {
            let mut next = Vec::new();
            for (i, pair) in layer.windows(2).enumerate() {
                let g = if (i + round) % 3 == 0 {
                    aig.xor(pair[0], pair[1])
                } else {
                    aig.and(pair[0], !pair[1])
                };
                next.push(g);
            }
            layer = next;
        }
        for (i, &lit) in layer.iter().enumerate() {
            aig.add_output(format!("y{i}"), lit);
        }
        let sim = AigSimulator::new(&aig);
        // 65536 patterns = 1024 words: enough for every level to cross the
        // parallel grain; the small counts keep the inline path covered.
        for n in [1usize, 63, 64, 65, 1000, 65536] {
            let patterns = PatternSet::random(12, n, n as u64).unwrap();
            let sequential = sim.run(&patterns);
            for threads in [2usize, 3, 4, 8] {
                let parallel = sim.run_parallel(&patterns, threads);
                assert_eq!(parallel.num_patterns(), sequential.num_patterns());
                for id in aig.node_ids() {
                    assert_eq!(
                        parallel.signature(id),
                        sequential.signature(id),
                        "node {id}, {n} patterns, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_with_one_thread_matches_run() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 100, 5).unwrap();
        let sim = AigSimulator::new(&aig);
        let a = sim.run(&patterns);
        let b = sim.run_parallel(&patterns, 1);
        for id in aig.node_ids() {
            assert_eq!(a.signature(id), b.signature(id));
        }
    }

    #[test]
    fn incremental_matches_full_resimulation() {
        let aig = sample_aig();
        let base = PatternSet::random(3, 100, 1).unwrap();
        let extra = PatternSet::random(3, 37, 2).unwrap();
        let sim = AigSimulator::new(&aig);
        let state = sim.run(&base);
        let incremental = sim.run_incremental(&state, &extra);

        let mut combined = base.clone();
        combined.extend(&extra);
        let full = sim.run(&combined);
        for id in aig.node_ids() {
            assert_eq!(incremental.signature(id), full.signature(id), "node {id}");
        }
        assert_eq!(incremental.num_patterns(), 137);
    }

    #[test]
    fn state_rows_are_generation_fresh() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 70, 9).unwrap();
        let state = AigSimulator::new(&aig).run(&patterns);
        for id in aig.node_ids() {
            assert!(!state.arena().is_stale(id));
        }
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn wrong_input_count_panics() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(2);
        let _ = AigSimulator::new(&aig).run(&patterns);
    }
}
