//! Word-parallel simulation of And-Inverter Graphs.

use crate::{parallel, PatternSet, Signature};
use netlist::{Aig, AigNode, NodeId};
use std::borrow::Cow;

/// The word-parallel AND of two fanin signatures with complements applied as
/// branchless XOR masks, writing words `offset .. offset + out.len()` of the
/// result.  This is the single AND kernel shared by the sequential,
/// incremental and parallel evaluators, so all of them are bit-identical by
/// construction.
fn and_words_into(
    s0: &Signature,
    c0: bool,
    s1: &Signature,
    c1: bool,
    offset: usize,
    out: &mut [u64],
) {
    let m0 = if c0 { u64::MAX } else { 0 };
    let m1 = if c1 { u64::MAX } else { 0 };
    let w0 = &s0.words()[offset..offset + out.len()];
    let w1 = &s1.words()[offset..offset + out.len()];
    for ((o, &a), &b) in out.iter_mut().zip(w0).zip(w1) {
        *o = (a ^ m0) & (b ^ m1);
    }
}

/// The word-parallel AND of two fanin signatures; `words` bounds the output
/// length.
fn and_words(s0: &Signature, c0: bool, s1: &Signature, c1: bool, words: usize) -> Vec<u64> {
    let mut out = vec![0u64; words];
    and_words_into(s0, c0, s1, c1, 0, &mut out);
    out
}

/// Simulation state: one packed signature per AIG node.
#[derive(Debug, Clone)]
pub struct AigSimState {
    signatures: Vec<Signature>,
    num_patterns: usize,
}

impl AigSimState {
    /// The signature of `node`.
    pub fn signature(&self, node: NodeId) -> &Signature {
        &self.signatures[node]
    }

    /// The signature seen at output `index` of `aig` (complement applied).
    ///
    /// Borrows the stored signature when the output is not complemented —
    /// the common case — instead of cloning on every call.
    pub fn output_signature(&self, aig: &Aig, index: usize) -> Cow<'_, Signature> {
        let output = &aig.outputs()[index];
        let sig = &self.signatures[output.lit.node()];
        if output.lit.is_complemented() {
            Cow::Owned(sig.complement())
        } else {
            Cow::Borrowed(sig)
        }
    }

    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// All node signatures, indexed by node id.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }
}

/// Word-parallel AIG simulator: 64 patterns per machine word, one word-level
/// AND/NOT per node per word (Section II-A of the paper).
///
/// The simulator is stateless apart from the network reference; [`run`] and
/// [`run_incremental`] return an [`AigSimState`] holding all signatures.
///
/// [`run`]: AigSimulator::run
/// [`run_incremental`]: AigSimulator::run_incremental
#[derive(Debug, Clone, Copy)]
pub struct AigSimulator<'a> {
    aig: &'a Aig,
}

impl<'a> AigSimulator<'a> {
    /// Creates a simulator for the given AIG.
    pub fn new(aig: &'a Aig) -> Self {
        AigSimulator { aig }
    }

    /// Simulates all nodes under the pattern set.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn run(&self, patterns: &PatternSet) -> AigSimState {
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let words = n.div_ceil(64).max(1);
        let mut signatures: Vec<Signature> = Vec::with_capacity(self.aig.num_nodes());
        for id in self.aig.node_ids() {
            let sig = match self.aig.node(id) {
                AigNode::Const0 => Signature::zeros(n),
                AigNode::Input { position } => patterns.input_signature(*position).clone(),
                AigNode::And { fanin0, fanin1 } => {
                    let s0 = &signatures[fanin0.node()];
                    let s1 = &signatures[fanin1.node()];
                    let out = and_words(
                        s0,
                        fanin0.is_complemented(),
                        s1,
                        fanin1.is_complemented(),
                        words,
                    );
                    Signature::from_words(n, out)
                }
            };
            signatures.push(sig);
        }
        AigSimState {
            signatures,
            num_patterns: n,
        }
    }

    /// Simulates all nodes with up to `num_threads` worker threads.
    ///
    /// Nodes are grouped by topological level; within one level every
    /// worker evaluates all nodes for a contiguous chunk of signature words
    /// (see [`crate::parallel`]).  Workers execute exactly the word
    /// operations of [`AigSimulator::run`], so the result is **bit-identical
    /// to a sequential run** for any thread count.  Levels whose work is
    /// below [`parallel::PARALLEL_GRAIN`] are evaluated inline.
    ///
    /// `num_threads <= 1` falls back to [`AigSimulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the AIG's.
    pub fn run_parallel(&self, patterns: &PatternSet, num_threads: usize) -> AigSimState {
        if num_threads <= 1 {
            return self.run(patterns);
        }
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let num_words = n.div_ceil(64).max(1);
        let groups = parallel::group_by_level(&self.aig.levels());
        let mut signatures: Vec<Signature> = vec![Signature::zeros(0); self.aig.num_nodes()];
        for group in &groups {
            // Constants and inputs (always level 0) are plain copies.
            let mut and_nodes: Vec<NodeId> = Vec::with_capacity(group.len());
            for &id in group {
                match self.aig.node(id) {
                    AigNode::Const0 => signatures[id] = Signature::zeros(n),
                    AigNode::Input { position } => {
                        signatures[id] = patterns.input_signature(*position).clone();
                    }
                    AigNode::And { .. } => and_nodes.push(id),
                }
            }
            if and_nodes.is_empty() {
                continue;
            }
            let aig = self.aig;
            let sigs = &signatures;
            let buffers = parallel::evaluate_level(
                &and_nodes,
                num_words,
                num_threads,
                &|id, word_lo, out| {
                    let AigNode::And { fanin0, fanin1 } = aig.node(id) else {
                        unreachable!("and_nodes only holds AND gates");
                    };
                    and_words_into(
                        &sigs[fanin0.node()],
                        fanin0.is_complemented(),
                        &sigs[fanin1.node()],
                        fanin1.is_complemented(),
                        word_lo,
                        out,
                    );
                },
            );
            for (out, &id) in buffers.into_iter().zip(and_nodes.iter()) {
                signatures[id] = Signature::from_words(n, out);
            }
        }
        AigSimState {
            signatures,
            num_patterns: n,
        }
    }

    /// Incremental re-simulation: appends the patterns of `extra` to an
    /// existing state, re-computing only the newly added words.  This mirrors
    /// the "re-computing only the last block of TT" optimisation the paper
    /// attributes to Mockturtle.
    ///
    /// # Panics
    ///
    /// Panics if `extra` has a different input count than the AIG.
    pub fn run_incremental(&self, state: &AigSimState, extra: &PatternSet) -> AigSimState {
        assert_eq!(
            extra.num_inputs(),
            self.aig.num_inputs(),
            "pattern set input count must match the network"
        );
        let old_n = state.num_patterns;
        let new_n = old_n + extra.num_patterns();
        let mut signatures = Vec::with_capacity(self.aig.num_nodes());
        for id in self.aig.node_ids() {
            let sig = match self.aig.node(id) {
                AigNode::Const0 => Signature::zeros(new_n),
                AigNode::Input { position } => {
                    let mut s = state.signatures[id].clone();
                    let extra_sig = extra.input_signature(*position);
                    let mut grown = Signature::zeros(new_n);
                    for i in 0..old_n {
                        if s.get_bit(i) {
                            grown.set_bit(i, true);
                        }
                    }
                    for i in 0..extra.num_patterns() {
                        if extra_sig.get_bit(i) {
                            grown.set_bit(old_n + i, true);
                        }
                    }
                    s = grown;
                    s
                }
                AigNode::And { fanin0, fanin1 } => {
                    let s0: &Signature = &signatures[fanin0.node()];
                    let s1: &Signature = &signatures[fanin1.node()];
                    let words = new_n.div_ceil(64).max(1);
                    let out = and_words(
                        s0,
                        fanin0.is_complemented(),
                        s1,
                        fanin1.is_complemented(),
                        words,
                    );
                    Signature::from_words(new_n, out)
                }
            };
            signatures.push(sig);
        }
        AigSimState {
            signatures,
            num_patterns: new_n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g = aig.and(a, b);
        let h = aig.xor(g, c);
        aig.add_output("and", g);
        aig.add_output("xor", h);
        aig
    }

    #[test]
    fn matches_reference_evaluation() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(3);
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in 0..8 {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            for (o, &value) in expected.iter().enumerate() {
                assert_eq!(
                    state.output_signature(&aig, o).get_bit(p),
                    value,
                    "output {o}, pattern {p}"
                );
            }
        }
    }

    #[test]
    fn random_patterns_match_reference() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 200, 42).unwrap();
        let state = AigSimulator::new(&aig).run(&patterns);
        for p in (0..200).step_by(17) {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            assert_eq!(state.output_signature(&aig, 1).get_bit(p), expected[1]);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        // A deeper circuit with enough words per level to cross the grain on
        // some levels and stay below it on others.
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 12);
        let mut layer: Vec<netlist::Lit> = xs.clone();
        for round in 0..6 {
            let mut next = Vec::new();
            for (i, pair) in layer.windows(2).enumerate() {
                let g = if (i + round) % 3 == 0 {
                    aig.xor(pair[0], pair[1])
                } else {
                    aig.and(pair[0], !pair[1])
                };
                next.push(g);
            }
            layer = next;
        }
        for (i, &lit) in layer.iter().enumerate() {
            aig.add_output(format!("y{i}"), lit);
        }
        let sim = AigSimulator::new(&aig);
        // 65536 patterns = 1024 words: enough for every level to cross the
        // parallel grain; the small counts keep the inline path covered.
        for n in [1usize, 63, 64, 65, 1000, 65536] {
            let patterns = PatternSet::random(12, n, n as u64).unwrap();
            let sequential = sim.run(&patterns);
            for threads in [2usize, 3, 4, 8] {
                let parallel = sim.run_parallel(&patterns, threads);
                assert_eq!(parallel.num_patterns(), sequential.num_patterns());
                for id in aig.node_ids() {
                    assert_eq!(
                        parallel.signature(id),
                        sequential.signature(id),
                        "node {id}, {n} patterns, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_with_one_thread_matches_run() {
        let aig = sample_aig();
        let patterns = PatternSet::random(3, 100, 5).unwrap();
        let sim = AigSimulator::new(&aig);
        let a = sim.run(&patterns);
        let b = sim.run_parallel(&patterns, 1);
        for id in aig.node_ids() {
            assert_eq!(a.signature(id), b.signature(id));
        }
    }

    #[test]
    fn incremental_matches_full_resimulation() {
        let aig = sample_aig();
        let base = PatternSet::random(3, 100, 1).unwrap();
        let extra = PatternSet::random(3, 37, 2).unwrap();
        let sim = AigSimulator::new(&aig);
        let state = sim.run(&base);
        let incremental = sim.run_incremental(&state, &extra);

        let mut combined = base.clone();
        combined.extend(&extra);
        let full = sim.run(&combined);
        for id in aig.node_ids() {
            assert_eq!(incremental.signature(id), full.signature(id), "node {id}");
        }
        assert_eq!(incremental.num_patterns(), 137);
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn wrong_input_count_panics() {
        let aig = sample_aig();
        let patterns = PatternSet::exhaustive(2);
        let _ = AigSimulator::new(&aig).run(&patterns);
    }
}
