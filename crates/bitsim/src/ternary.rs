//! X-valued (ternary) bit-parallel simulation.
//!
//! Sequential designs start from an initial state in which some latches are
//! uninitialised.  Ternary simulation propagates three-valued patterns —
//! 0, 1 and `X` ("either") — through the AIG using a **two-plane
//! encoding**: every node carries a *value* plane and a *care* plane, both
//! stored bit-parallel in [`SignatureArena`]s, 64 patterns per word.  A
//! pattern bit is a definite 0/1 where the care bit is set and `X` where it
//! is clear (the value bit of an `X` is always 0, keeping signatures
//! canonical).  The AND evaluation is one word-zip kernel
//! ([`crate::kernels::ternary_and2_masked`]) implementing Kleene logic.
//!
//! [`ternary_fixpoint`] iterates the transition functions from the initial
//! state with all primary inputs at `X`, widening each latch to `X` the
//! first time two consecutive time-frames disagree.  The result is a sound
//! over-approximation of the reachable values of every latch: a latch whose
//! fixpoint value is still a definite 0/1 holds that value in **every**
//! reachable state, and the per-latch trajectories seed the candidate
//! equivalence classes of sequential SAT-sweeping.
//!
//! ```
//! use bitsim::{ternary_fixpoint, TernaryValue};
//! use netlist::{Aig, LatchInit};
//!
//! // `stuck` can never leave 0 (its next state is `stuck AND x`), while
//! // `live` toggles freely; the fixpoint proves exactly that without a
//! // single SAT call.
//! let mut aig = Aig::new();
//! let x = aig.add_input("x");
//! let live = aig.add_latch("live", LatchInit::Zero);
//! let stuck = aig.add_latch("stuck", LatchInit::Zero);
//! let live_next = aig.xor(live, x);
//! let stuck_next = aig.and(stuck, x);
//! aig.set_latch_next(0, live_next);
//! aig.set_latch_next(1, stuck_next);
//!
//! let fixpoint = ternary_fixpoint(&aig);
//! assert_eq!(fixpoint.values[0], TernaryValue::X);    // live: unknown
//! assert_eq!(fixpoint.values[1], TernaryValue::Zero); // stuck-at-0
//! ```

use crate::arena::SignatureArena;
use crate::kernels;
use crate::signature::Signature;
use netlist::{Aig, AigNode, LatchInit, Lit};

/// A three-valued simulation value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TernaryValue {
    /// Definitely 0.
    Zero,
    /// Definitely 1.
    One,
    /// Unknown: both values are possible.
    X,
}

impl TernaryValue {
    /// The definite value corresponding to a Boolean.
    pub fn from_bool(value: bool) -> Self {
        if value {
            TernaryValue::One
        } else {
            TernaryValue::Zero
        }
    }

    /// The abstract initial value of a latch.
    pub fn from_init(init: LatchInit) -> Self {
        match init {
            LatchInit::Zero => TernaryValue::Zero,
            LatchInit::One => TernaryValue::One,
            LatchInit::X => TernaryValue::X,
        }
    }

    /// The definite value, if any.
    pub fn concrete(self) -> Option<bool> {
        match self {
            TernaryValue::Zero => Some(false),
            TernaryValue::One => Some(true),
            TernaryValue::X => None,
        }
    }

    /// Kleene negation applied iff `flip`.
    #[must_use]
    pub fn complement_if(self, flip: bool) -> Self {
        match (self, flip) {
            (TernaryValue::Zero, true) => TernaryValue::One,
            (TernaryValue::One, true) => TernaryValue::Zero,
            (v, _) => v,
        }
    }

    /// The join of two values in the flat ternary lattice: equal values stay
    /// put, disagreement widens to `X`.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            TernaryValue::X
        }
    }
}

/// A set of ternary simulation patterns, one [`TernaryValue`] per input per
/// pattern, stored as per-input value/care [`Signature`] pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryPatternSet {
    val: Vec<Signature>,
    care: Vec<Signature>,
    num_patterns: usize,
}

impl TernaryPatternSet {
    /// Creates an empty pattern set for `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Self {
        TernaryPatternSet {
            val: vec![Signature::zeros(0); num_inputs],
            care: vec![Signature::zeros(0); num_inputs],
            num_patterns: 0,
        }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.val.len()
    }

    /// Number of patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Appends one pattern (one value per input, declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` does not supply exactly one value per input.
    pub fn push_pattern(&mut self, pattern: &[TernaryValue]) {
        assert_eq!(
            pattern.len(),
            self.val.len(),
            "pattern must assign every input"
        );
        for (input, &value) in pattern.iter().enumerate() {
            self.val[input].push(value == TernaryValue::One);
            self.care[input].push(value != TernaryValue::X);
        }
        self.num_patterns += 1;
    }

    /// The value of input `input` under pattern `index`.
    pub fn value(&self, input: usize, index: usize) -> TernaryValue {
        if !self.care[input].get_bit(index) {
            TernaryValue::X
        } else {
            TernaryValue::from_bool(self.val[input].get_bit(index))
        }
    }
}

/// The two signature planes produced by a ternary simulation run.
#[derive(Debug, Clone)]
pub struct TernarySimState {
    val: SignatureArena,
    care: SignatureArena,
}

impl TernarySimState {
    /// The value of node `node` under pattern `index`.
    pub fn value(&self, node: usize, index: usize) -> TernaryValue {
        if !self.care.sig(node).get_bit(index) {
            TernaryValue::X
        } else {
            TernaryValue::from_bool(self.val.sig(node).get_bit(index))
        }
    }

    /// The value of literal `lit` (Kleene negation for complemented edges).
    pub fn lit_value(&self, lit: Lit, index: usize) -> TernaryValue {
        self.value(lit.node(), index)
            .complement_if(lit.is_complemented())
    }

    /// The value of output `index` of `aig` under pattern `pattern`.
    pub fn output_value(&self, aig: &Aig, index: usize, pattern: usize) -> TernaryValue {
        self.lit_value(aig.outputs()[index].lit, pattern)
    }

    /// The value plane (bit set ⇔ definitely 1).
    pub fn val_arena(&self) -> &SignatureArena {
        &self.val
    }

    /// The care plane (bit set ⇔ defined).
    pub fn care_arena(&self) -> &SignatureArena {
        &self.care
    }
}

/// Word-level complement mask for a fanin polarity.
fn mask(complemented: bool) -> u64 {
    if complemented {
        u64::MAX
    } else {
        0
    }
}

/// Bit-parallel ternary simulation of an [`Aig`] (see the [module
/// documentation](self)).
#[derive(Debug)]
pub struct TernarySimulator<'a> {
    aig: &'a Aig,
}

impl<'a> TernarySimulator<'a> {
    /// Creates a simulator for `aig`.
    pub fn new(aig: &'a Aig) -> Self {
        TernarySimulator { aig }
    }

    /// Evaluates every node under every pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's.
    pub fn run(&self, patterns: &TernaryPatternSet) -> TernarySimState {
        assert_eq!(
            patterns.num_inputs(),
            self.aig.num_inputs(),
            "pattern set must match the network's input count"
        );
        let n = patterns.num_patterns();
        let mut val = SignatureArena::new(self.aig.num_nodes(), n);
        let mut care = SignatureArena::new(self.aig.num_nodes(), n);
        for id in self.aig.node_ids() {
            match self.aig.node(id) {
                // Constant 0: value plane stays zero, everything defined.
                AigNode::Const0 => {
                    care.row_mut(id).fill(u64::MAX);
                    care.mask_row_tail(id);
                }
                AigNode::Input { position } => {
                    val.row_mut(id)
                        .copy_from_slice(patterns.val[*position].words());
                    care.row_mut(id)
                        .copy_from_slice(patterns.care[*position].words());
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (f0, f1) = (*fanin0, *fanin1);
                    let (val_prefix, val_row) = val.split_at_row(id);
                    let (care_prefix, care_row) = care.split_at_row(id);
                    // Tail bits stay zero: the kernel ANDs every result bit
                    // with a care plane whose tails are already masked.
                    kernels::ternary_and2_masked(
                        val_prefix.row(f0.node()),
                        care_prefix.row(f0.node()),
                        val_prefix.row(f1.node()),
                        care_prefix.row(f1.node()),
                        mask(f0.is_complemented()),
                        mask(f1.is_complemented()),
                        val_row,
                        care_row,
                    );
                }
            }
            val.mark_written(id);
            care.mark_written(id);
        }
        TernarySimState { val, care }
    }
}

/// The result of [`ternary_fixpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryFixpoint {
    /// Number of simulation rounds until stabilisation (at most
    /// `num_latches + 1`).
    pub iterations: usize,
    /// The fixpoint value of every latch: a definite 0/1 means the latch
    /// holds that value in every reachable state.
    pub values: Vec<TernaryValue>,
    /// Per-latch value trajectory: the initial value followed by the merged
    /// state after each round (all trajectories have equal length
    /// `iterations + 1`).
    pub trajectories: Vec<Vec<TernaryValue>>,
}

/// Iterates the latch transition functions from the initial state (primary
/// inputs at `X`) until the widened state stabilises.
///
/// Monotone by construction — a latch only ever moves from a definite value
/// to `X`, never back — so the loop terminates after at most
/// `num_latches + 1` rounds.
pub fn ternary_fixpoint(aig: &Aig) -> TernaryFixpoint {
    let num_latches = aig.num_latches();
    let mut state: Vec<TernaryValue> = aig
        .latches()
        .iter()
        .map(|l| TernaryValue::from_init(l.init))
        .collect();
    let mut trajectories: Vec<Vec<TernaryValue>> = state.iter().map(|&v| vec![v]).collect();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut pattern = vec![TernaryValue::X; aig.num_inputs()];
        for (idx, latch) in aig.latches().iter().enumerate() {
            pattern[latch.state_input] = state[idx];
        }
        let mut patterns = TernaryPatternSet::new(aig.num_inputs());
        patterns.push_pattern(&pattern);
        let sim = TernarySimulator::new(aig).run(&patterns);
        let mut changed = false;
        for idx in 0..num_latches {
            let next = sim.lit_value(aig.latch_next_lit(idx), 0);
            let merged = state[idx].merge(next);
            if merged != state[idx] {
                state[idx] = merged;
                changed = true;
            }
            trajectories[idx].push(state[idx]);
        }
        if !changed {
            break;
        }
        debug_assert!(
            iterations <= num_latches + 1,
            "the widening lattice has height one, so the fixpoint must \
             arrive within num_latches + 1 rounds"
        );
    }
    TernaryFixpoint {
        iterations,
        values: state,
        trajectories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_and_matches_binary_on_defined_patterns() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.xor(a, b);
        aig.add_output("y", y);

        let mut patterns = TernaryPatternSet::new(2);
        for (va, vb) in [
            (TernaryValue::Zero, TernaryValue::Zero),
            (TernaryValue::Zero, TernaryValue::One),
            (TernaryValue::One, TernaryValue::Zero),
            (TernaryValue::One, TernaryValue::One),
        ] {
            patterns.push_pattern(&[va, vb]);
        }
        let sim = TernarySimulator::new(&aig).run(&patterns);
        let expected = [
            TernaryValue::Zero,
            TernaryValue::One,
            TernaryValue::One,
            TernaryValue::Zero,
        ];
        for (index, &want) in expected.iter().enumerate() {
            assert_eq!(sim.output_value(&aig, 0, index), want);
        }
    }

    #[test]
    fn x_propagates_unless_controlled() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.and(a, b);
        aig.add_output("y", y);
        aig.add_output("not_a", !a);

        let mut patterns = TernaryPatternSet::new(2);
        // X & 0 = 0 (controlling), X & 1 = X, X & X = X; !X = X.
        patterns.push_pattern(&[TernaryValue::X, TernaryValue::Zero]);
        patterns.push_pattern(&[TernaryValue::X, TernaryValue::One]);
        patterns.push_pattern(&[TernaryValue::X, TernaryValue::X]);
        let sim = TernarySimulator::new(&aig).run(&patterns);
        assert_eq!(sim.output_value(&aig, 0, 0), TernaryValue::Zero);
        assert_eq!(sim.output_value(&aig, 0, 1), TernaryValue::X);
        assert_eq!(sim.output_value(&aig, 0, 2), TernaryValue::X);
        assert_eq!(sim.output_value(&aig, 1, 0), TernaryValue::X);
    }

    #[test]
    fn fixpoint_finds_stuck_latches_and_widens_free_ones() {
        use netlist::LatchInit;
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        // stuck: starts 0, feeds itself ANDed with an input — stays 0.
        let stuck = aig.add_latch("stuck", LatchInit::Zero);
        let stuck_next = aig.and(stuck, en);
        aig.set_latch_next(0, stuck_next);
        // toggle: starts 0 but may flip when enabled — widens to X.
        let toggle = aig.add_latch("toggle", LatchInit::Zero);
        let toggle_next = aig.mux(en, !toggle, toggle);
        aig.set_latch_next(1, toggle_next);
        aig.add_output("o", toggle);

        let fix = ternary_fixpoint(&aig);
        assert_eq!(fix.values[0], TernaryValue::Zero);
        assert_eq!(fix.values[1], TernaryValue::X);
        assert!(fix.iterations <= aig.num_latches() + 1);
        for trajectory in &fix.trajectories {
            assert_eq!(trajectory.len(), fix.iterations + 1);
        }
        // Monotone: once X, always X.
        for trajectory in &fix.trajectories {
            let mut seen_x = false;
            for &v in trajectory {
                if seen_x {
                    assert_eq!(v, TernaryValue::X);
                }
                seen_x |= v == TernaryValue::X;
            }
        }
    }

    #[test]
    fn fixpoint_keeps_constant_one_latches() {
        use netlist::LatchInit;
        let mut aig = Aig::new();
        let q = aig.add_latch("q", LatchInit::One);
        aig.set_latch_next(0, q); // identity: stays 1 forever
        aig.add_output("o", q);
        let fix = ternary_fixpoint(&aig);
        assert_eq!(fix.values[0], TernaryValue::One);
        assert_eq!(fix.iterations, 1);
    }
}
