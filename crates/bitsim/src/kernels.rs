//! Word-zip kernels shared by the level-evaluation paths.
//!
//! These are the innermost loops of bit-parallel simulation: bulk AND / OR
//! / AND-NOT over `u64` signature words.  Each kernel has two
//! implementations selected at compile time:
//!
//! * the default **scalar** path is written as a plain stride-1 slice zip so
//!   the compiler's autovectorizer turns it into SIMD on any target that
//!   has vector units;
//! * the **`simd` cargo feature** switches to explicitly 4×`u64`-lane
//!   widened loops (a stable-Rust stand-in for `std::simd`, which is still
//!   nightly-only) that guarantee the wide shape instead of relying on the
//!   autovectorizer.
//!
//! Both paths are bit-identical; the property tests in this crate verify
//! whichever path is compiled against a naive per-bit reference, and CI
//! builds and tests both feature legs.

/// `out[w] = (a[w] ^ mask_a) & (b[w] ^ mask_b)` — the AIG AND kernel with
/// complement masks (`u64::MAX` complements an operand, `0` passes it
/// through).
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(not(feature = "simd"))]
pub fn and2_masked(a: &[u64], b: &[u64], mask_a: u64, mask_b: u64, out: &mut [u64]) {
    assert!(a.len() == out.len() && b.len() == out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (x ^ mask_a) & (y ^ mask_b);
    }
}

/// `out[w] = (a[w] ^ mask_a) & (b[w] ^ mask_b)` — explicit 4-lane variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(feature = "simd")]
pub fn and2_masked(a: &[u64], b: &[u64], mask_a: u64, mask_b: u64, out: &mut [u64]) {
    assert!(a.len() == out.len() && b.len() == out.len());
    let mut chunks = out.chunks_exact_mut(4);
    let mut a_chunks = a.chunks_exact(4);
    let mut b_chunks = b.chunks_exact(4);
    for o in chunks.by_ref() {
        let x = a_chunks.next().unwrap();
        let y = b_chunks.next().unwrap();
        let lanes = [
            (x[0] ^ mask_a) & (y[0] ^ mask_b),
            (x[1] ^ mask_a) & (y[1] ^ mask_b),
            (x[2] ^ mask_a) & (y[2] ^ mask_b),
            (x[3] ^ mask_a) & (y[3] ^ mask_b),
        ];
        o.copy_from_slice(&lanes);
    }
    for ((o, &x), &y) in chunks
        .into_remainder()
        .iter_mut()
        .zip(a_chunks.remainder())
        .zip(b_chunks.remainder())
    {
        *o = (x ^ mask_a) & (y ^ mask_b);
    }
}

/// `dst[w] &= src[w]`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(not(feature = "simd"))]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// `dst[w] &= src[w]` — explicit 4-lane variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(feature = "simd")]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    let mut chunks = dst.chunks_exact_mut(4);
    let mut s_chunks = src.chunks_exact(4);
    for d in chunks.by_ref() {
        let s = s_chunks.next().unwrap();
        let lanes = [d[0] & s[0], d[1] & s[1], d[2] & s[2], d[3] & s[3]];
        d.copy_from_slice(&lanes);
    }
    for (d, &s) in chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
        *d &= s;
    }
}

/// `dst[w] &= !src[w]`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(not(feature = "simd"))]
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

/// `dst[w] &= !src[w]` — explicit 4-lane variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(feature = "simd")]
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    let mut chunks = dst.chunks_exact_mut(4);
    let mut s_chunks = src.chunks_exact(4);
    for d in chunks.by_ref() {
        let s = s_chunks.next().unwrap();
        let lanes = [d[0] & !s[0], d[1] & !s[1], d[2] & !s[2], d[3] & !s[3]];
        d.copy_from_slice(&lanes);
    }
    for (d, &s) in chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
        *d &= !s;
    }
}

/// `dst[w] |= src[w]`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(not(feature = "simd"))]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst[w] |= src[w]` — explicit 4-lane variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[cfg(feature = "simd")]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len());
    let mut chunks = dst.chunks_exact_mut(4);
    let mut s_chunks = src.chunks_exact(4);
    for d in chunks.by_ref() {
        let s = s_chunks.next().unwrap();
        let lanes = [d[0] | s[0], d[1] | s[1], d[2] | s[2], d[3] | s[3]];
        d.copy_from_slice(&lanes);
    }
    for (d, &s) in chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
        *d |= s;
    }
}

/// The two-plane ternary AND kernel with complement masks.
///
/// Each operand is a `(value, care)` word pair: a pattern bit is 0/1 where
/// the care bit is set and `X` where it is clear.  `mask_*` complements an
/// operand's *value* plane (`u64::MAX`) or passes it through (`0`);
/// complementation never changes definedness.  The result planes follow
/// Kleene AND:
///
/// * defined-1 where both operands are defined 1,
/// * defined-0 where either operand is defined 0,
/// * `X` otherwise.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn ternary_and2_masked(
    val_a: &[u64],
    care_a: &[u64],
    val_b: &[u64],
    care_b: &[u64],
    mask_a: u64,
    mask_b: u64,
    out_val: &mut [u64],
    out_care: &mut [u64],
) {
    assert!(
        val_a.len() == out_val.len()
            && care_a.len() == out_val.len()
            && val_b.len() == out_val.len()
            && care_b.len() == out_val.len()
            && out_care.len() == out_val.len()
    );
    for w in 0..out_val.len() {
        let xa = val_a[w] ^ mask_a;
        let xb = val_b[w] ^ mask_b;
        let def1 = (care_a[w] & xa) & (care_b[w] & xb);
        let def0 = (care_a[w] & !xa) | (care_b[w] & !xb);
        out_val[w] = def1;
        out_care[w] = def0 | def1;
    }
}

/// `dst[w] = if invert { !src[w] } else { src[w] }` — the final write of a
/// polarity-folded LUT evaluation.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn copy_polarity(dst: &mut [u64], src: &[u64], invert: bool) {
    assert_eq!(dst.len(), src.len());
    if invert {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = !s;
        }
    } else {
        dst.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(seed: u64, n: usize) -> Vec<u64> {
        // Deterministic xorshift-style filler; no RNG dependency.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn and2_masked_matches_reference() {
        for n in [0, 1, 3, 4, 5, 8, 17] {
            let a = pattern(1, n);
            let b = pattern(2, n);
            for (ma, mb) in [(0, 0), (u64::MAX, 0), (0, u64::MAX), (u64::MAX, u64::MAX)] {
                let mut out = vec![0u64; n];
                and2_masked(&a, &b, ma, mb, &mut out);
                for w in 0..n {
                    assert_eq!(out[w], (a[w] ^ ma) & (b[w] ^ mb));
                }
            }
        }
    }

    #[test]
    fn ternary_and2_matches_kleene_truth_table() {
        // One word, bits laid out as all 9 operand combinations of
        // {0, 1, X} × {0, 1, X}; remaining bits replicate combination 0.
        let encode = |v: [Option<bool>; 9]| -> (u64, u64) {
            let mut val = 0u64;
            let mut care = 0u64;
            for (bit, x) in v.iter().enumerate() {
                if let Some(b) = x {
                    care |= 1 << bit;
                    if *b {
                        val |= 1 << bit;
                    }
                }
            }
            (val, care)
        };
        let (zero, one, x) = (Some(false), Some(true), None);
        let a = [zero, zero, zero, one, one, one, x, x, x];
        let b = [zero, one, x, zero, one, x, zero, one, x];
        let (va, ka) = encode(a);
        let (vb, kb) = encode(b);
        for (ma, mb) in [(0, 0), (u64::MAX, 0), (0, u64::MAX), (u64::MAX, u64::MAX)] {
            let (mut ov, mut ok) = ([0u64], [0u64]);
            ternary_and2_masked(&[va], &[ka], &[vb], &[kb], ma, mb, &mut ov, &mut ok);
            for bit in 0..9 {
                let lhs = a[bit].map(|v| v ^ (ma != 0));
                let rhs = b[bit].map(|v| v ^ (mb != 0));
                let expected = match (lhs, rhs) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                let got_care = ok[0] >> bit & 1 == 1;
                let got_val = ov[0] >> bit & 1 == 1;
                match expected {
                    Some(v) => {
                        assert!(got_care, "bit {bit} masks {ma:#x} {mb:#x}");
                        assert_eq!(got_val, v, "bit {bit} masks {ma:#x} {mb:#x}");
                    }
                    None => {
                        assert!(!got_care, "bit {bit} masks {ma:#x} {mb:#x}");
                        assert!(!got_val, "X is encoded with a zero value bit");
                    }
                }
            }
        }
    }

    #[test]
    fn assign_kernels_match_reference() {
        for n in [0, 1, 4, 7, 12, 33] {
            let src = pattern(3, n);
            let base = pattern(4, n);

            let mut d = base.clone();
            and_assign(&mut d, &src);
            assert!(d
                .iter()
                .zip(&base)
                .zip(&src)
                .all(|((&o, &b), &s)| o == b & s));

            let mut d = base.clone();
            andnot_assign(&mut d, &src);
            assert!(d
                .iter()
                .zip(&base)
                .zip(&src)
                .all(|((&o, &b), &s)| o == b & !s));

            let mut d = base.clone();
            or_assign(&mut d, &src);
            assert!(d
                .iter()
                .zip(&base)
                .zip(&src)
                .all(|((&o, &b), &s)| o == b | s));

            let mut d = vec![0u64; n];
            copy_polarity(&mut d, &src, false);
            assert_eq!(d, src);
            copy_polarity(&mut d, &src, true);
            assert!(d.iter().zip(&src).all(|(&o, &s)| o == !s));
        }
    }
}
