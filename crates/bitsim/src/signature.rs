//! Simulation signatures: the ordered set of values a node produces under a
//! pattern set.

use std::fmt;

/// A simulation signature: one bit per simulation pattern.
///
/// Signatures are the basis of equivalence-class computation in
/// SAT-sweeping: two nodes can only be functionally equivalent (up to
/// complementation) if their signatures agree (up to complementation) on
/// every simulated pattern.
///
/// ```
/// use bitsim::Signature;
///
/// let mut s = Signature::zeros(5);
/// s.set_bit(1, true);
/// s.set_bit(4, true);
/// assert_eq!(s.count_ones(), 2);
/// assert_eq!(s.to_binary_string(), "10010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature {
    words: Vec<u64>,
    len: usize,
}

impl Signature {
    /// An all-zero signature over `len` patterns.
    pub fn zeros(len: usize) -> Self {
        Signature {
            words: vec![0; len.div_ceil(64).max(1)],
            len,
        }
    }

    /// An all-one signature over `len` patterns.
    pub fn ones(len: usize) -> Self {
        let mut s = Self::zeros(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.mask_tail();
        s
    }

    /// Builds a signature from packed words (little-endian bit order).
    ///
    /// Shorter inputs are zero-padded to the `len.div_ceil(64)` words the
    /// signature needs; bits beyond `len` in the last word are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds *more* words than `len` bits can occupy —
    /// excess words are almost certainly a caller bug (a signature built
    /// for the wrong pattern count), and silently dropping them would hide
    /// it.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        let needed = len.div_ceil(64).max(1);
        assert!(
            words.len() <= needed,
            "{} words cannot back a {len}-bit signature (expected at most {needed})",
            words.len(),
        );
        let mut s = Signature { words, len };
        s.words.resize(needed, 0);
        s.mask_tail();
        s
    }

    /// Builds a signature from an iterator of Booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let collected: Vec<bool> = bits.into_iter().collect();
        let mut s = Self::zeros(collected.len());
        for (i, &b) in collected.iter().enumerate() {
            if b {
                s.set_bit(i, true);
            }
        }
        s
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the signature covers zero patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value for pattern `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get_bit(&self, index: usize) -> bool {
        assert!(index < self.len, "signature index out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the value for pattern `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "signature index out of range");
        if value {
            self.words[index / 64] |= 1 << (index % 64);
        } else {
            self.words[index / 64] &= !(1 << (index % 64));
        }
    }

    /// Appends one more pattern value.
    pub fn push(&mut self, value: bool) {
        let index = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        self.set_bit(index, value);
    }

    /// Number of patterns under which the node evaluates to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the node simulates to 0 under every pattern.
    pub fn is_const0(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if the node simulates to 1 under every pattern.
    pub fn is_const1(&self) -> bool {
        self.count_ones() == self.len && self.len > 0
    }

    /// Bitwise complement of the signature.
    #[must_use]
    pub fn complement(&self) -> Signature {
        let words = self.words.iter().map(|&w| !w).collect();
        Signature::from_words(self.len, words)
    }

    /// `true` if the two signatures are equal or complementary.
    pub fn equal_up_to_complement(&self, other: &Signature) -> bool {
        self == other || *self == other.complement()
    }

    /// A canonical key for equivalence-class bucketing up to
    /// complementation: the signature itself if its first bit is 0,
    /// otherwise its complement.  Two nodes share a key iff their signatures
    /// are equal up to complementation.
    pub fn canonical_key(&self) -> Signature {
        if self.len > 0 && self.get_bit(0) {
            self.complement()
        } else {
            self.clone()
        }
    }

    /// The toggle rate: the fraction of adjacent pattern positions whose
    /// values differ (footnote 1 of the paper).
    pub fn toggle_rate(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let mut toggles = 0usize;
        let mut prev = self.get_bit(0);
        for i in 1..self.len {
            let cur = self.get_bit(i);
            if cur != prev {
                toggles += 1;
            }
            prev = cur;
        }
        toggles as f64 / (self.len - 1) as f64
    }

    /// Index of the first pattern where the two signatures differ, if any.
    pub fn first_difference(&self, other: &Signature) -> Option<usize> {
        assert_eq!(self.len, other.len, "signatures must have the same length");
        for (w, (&a, &b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                let bit = w * 64 + diff.trailing_zeros() as usize;
                if bit < self.len {
                    return Some(bit);
                }
            }
        }
        None
    }

    /// Renders the signature as a binary string with pattern 0 as the
    /// right-most character.
    pub fn to_binary_string(&self) -> String {
        (0..self.len)
            .rev()
            .map(|i| if self.get_bit(i) { '1' } else { '0' })
            .collect()
    }

    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.len == 0 {
            for w in &mut self.words {
                *w = 0;
            }
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "Signature({})", self.to_binary_string())
        } else {
            write!(f, "Signature(len={}, ones={})", self.len, self.count_ones())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bits() {
        let s = Signature::from_bits([true, false, true, true]);
        assert_eq!(s.len(), 4);
        assert!(s.get_bit(0));
        assert!(!s.get_bit(1));
        assert_eq!(s.count_ones(), 3);
        assert_eq!(s.to_binary_string(), "1101");
    }

    #[test]
    fn from_words_pads_and_masks() {
        let s = Signature::from_words(70, vec![u64::MAX]);
        assert_eq!(s.len(), 70);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.count_ones(), 64);
        let t = Signature::from_words(10, vec![u64::MAX]);
        assert_eq!(t.count_ones(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot back")]
    fn from_words_rejects_over_long_input() {
        // Two words can only back up to 128 bits; 65 bits need just two,
        // so three words must be rejected rather than silently truncated.
        let _ = Signature::from_words(65, vec![1, 2, 3]);
    }

    #[test]
    fn constants() {
        assert!(Signature::zeros(10).is_const0());
        assert!(Signature::ones(10).is_const1());
        assert!(!Signature::zeros(0).is_const1());
    }

    #[test]
    fn complement_and_canonical_key() {
        let s = Signature::from_bits([true, false, true]);
        let c = s.complement();
        assert_eq!(c.to_binary_string(), "010");
        assert!(s.equal_up_to_complement(&c));
        assert_eq!(s.canonical_key(), c);
        assert_eq!(c.canonical_key(), c);
    }

    #[test]
    fn complement_masks_tail_bits() {
        let s = Signature::zeros(70);
        let c = s.complement();
        assert_eq!(c.count_ones(), 70);
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn push_grows() {
        let mut s = Signature::zeros(0);
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 44);
    }

    #[test]
    fn first_difference() {
        let a = Signature::from_bits((0..100).map(|i| i % 2 == 0));
        let mut b = a.clone();
        assert_eq!(a.first_difference(&b), None);
        b.set_bit(77, !b.get_bit(77));
        assert_eq!(a.first_difference(&b), Some(77));
    }

    #[test]
    fn toggle_rate() {
        let alternating = Signature::from_bits((0..64).map(|i| i % 2 == 0));
        assert!(alternating.toggle_rate() > 0.99);
        assert_eq!(Signature::ones(64).toggle_rate(), 0.0);
    }
}
