//! # bitsim — word-parallel bitwise circuit simulation (baseline)
//!
//! This crate is the reproduction of the *baseline* simulator the paper
//! compares against (the Mockturtle logic-network simulator of Table I):
//!
//! * [`PatternSet`] — a set of simulation patterns stored bit-parallel, 64
//!   patterns per machine word (Section II-A of the paper).
//! * [`Signature`] — the simulation signature of a node: its output value
//!   under every pattern.
//! * [`AigSimulator`] — word-parallel simulation of an AIG: one AND/XOR
//!   instruction simulates 64 patterns at once.
//! * [`ternary`] — X-valued two-plane simulation for sequential designs:
//!   Kleene logic over a (value, care) signature pair per node, plus the
//!   [`ternary_fixpoint`] initial-state analysis that seeds sequential
//!   sweeping.
//! * [`cosplit`] — the online co-split statistic ([`CoSplitTable`]) that
//!   refinement-aware SAT batching in the `stp-sweep` crate learns from
//!   committed counter-example refinements.
//! * [`LutSimulator`] — simulation of a k-LUT network.  As the paper notes,
//!   bit-parallel words do not help a k-LUT directly: the baseline extracts
//!   the individual input bits of each pattern, forms the LUT index and looks
//!   the output bit up, pattern by pattern.  This is the behaviour the
//!   STP-based simulator in the `stp-sweep` crate is measured against.
//!
//! ```
//! use bitsim::{AigSimulator, PatternSet};
//! use netlist::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let y = aig.xor(a, b);
//! aig.add_output("y", y);
//!
//! let patterns = PatternSet::exhaustive(2);
//! let sim = AigSimulator::new(&aig).run(&patterns);
//! let signature = sim.output_signature(&aig, 0);
//! assert_eq!(signature.to_binary_string(), "0110");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig_sim;
pub mod arena;
pub mod cosplit;
pub mod kernels;
mod lut_sim;
pub mod parallel;
mod patterns;
mod signature;
pub mod ternary;

pub use aig_sim::{AigSimState, AigSimulator};
pub use arena::{ArenaPrefix, ArenaRows, SigRef, SignatureArena};
pub use cosplit::{CoSplitSnapshot, CoSplitTable};
pub use lut_sim::{LutSimState, LutSimulator};
pub use patterns::{PatternError, PatternSet};
pub use signature::Signature;
pub use ternary::{
    ternary_fixpoint, TernaryFixpoint, TernaryPatternSet, TernarySimState, TernarySimulator,
    TernaryValue,
};
