//! Simulation pattern sets.

use crate::Signature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors of pattern-set construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// Zero patterns were requested.  An empty pattern set makes every node
    /// signature empty, which silently turns every node into a constant
    /// candidate downstream — reject it up front instead.
    EmptyPatternSet {
        /// The number of inputs the set was requested for.
        num_inputs: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::EmptyPatternSet { num_inputs } => write!(
                f,
                "refusing to generate an empty random pattern set \
                 ({num_inputs} inputs, 0 patterns): empty signatures make \
                 every node look constant"
            ),
        }
    }
}

impl std::error::Error for PatternError {}

/// A set of simulation patterns for a network with a fixed number of primary
/// inputs, stored bit-parallel (one [`Signature`] per input, one bit per
/// pattern).
///
/// ```
/// use bitsim::PatternSet;
///
/// let p = PatternSet::exhaustive(3);
/// assert_eq!(p.num_patterns(), 8);
/// assert_eq!(p.assignment(5), vec![true, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    inputs: Vec<Signature>,
    num_patterns: usize,
}

impl PatternSet {
    /// Creates an empty pattern set (zero patterns) for `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Self {
        PatternSet {
            inputs: vec![Signature::zeros(0); num_inputs],
            num_patterns: 0,
        }
    }

    /// Generates `num_patterns` uniformly random patterns from a seed.
    ///
    /// `num_patterns` must be nonzero: an empty random set would produce
    /// empty signatures for every node (silently classifying everything as a
    /// constant candidate), so it is rejected with
    /// [`PatternError::EmptyPatternSet`] instead.
    pub fn random(num_inputs: usize, num_patterns: usize, seed: u64) -> Result<Self, PatternError> {
        if num_patterns == 0 {
            return Err(PatternError::EmptyPatternSet { num_inputs });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let words = num_patterns.div_ceil(64).max(1);
        let inputs = (0..num_inputs)
            .map(|_| {
                let w: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
                Signature::from_words(num_patterns, w)
            })
            .collect();
        Ok(PatternSet {
            inputs,
            num_patterns,
        })
    }

    /// Generates the exhaustive set of `2^num_inputs` patterns: pattern `p`
    /// assigns input `i` the value `(p >> i) & 1`, so input signatures equal
    /// the projection truth tables.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 24` (the exhaustive set would not fit in
    /// memory sensibly; the paper restricts exhaustive simulation to windows
    /// of fewer than 16 leaves).
    pub fn exhaustive(num_inputs: usize) -> Self {
        assert!(num_inputs <= 24, "exhaustive pattern set too large");
        let num_patterns = 1usize << num_inputs;
        let inputs = (0..num_inputs)
            .map(|i| Signature::from_bits((0..num_patterns).map(move |p| (p >> i) & 1 == 1)))
            .collect();
        PatternSet {
            inputs,
            num_patterns,
        }
    }

    /// Builds a pattern set from explicit per-input bit strings, following
    /// the paper's Section III-C convention: `strings[i]` lists the values of
    /// input `i`, with "the i-th bit of each input" forming the i-th pattern.
    /// The left-most character of each string is the **last** pattern (the
    /// strings read right to left), matching [`Signature::to_binary_string`].
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths or contain characters
    /// other than `0`/`1`.
    pub fn from_binary_strings(strings: &[&str]) -> Self {
        assert!(!strings.is_empty(), "at least one input required");
        let len = strings[0].len();
        let inputs: Vec<Signature> = strings
            .iter()
            .map(|s| {
                assert_eq!(s.len(), len, "all pattern strings must have equal length");
                Signature::from_bits(s.chars().rev().map(|c| match c {
                    '0' => false,
                    '1' => true,
                    _ => panic!("invalid pattern character '{c}'"),
                }))
            })
            .collect();
        PatternSet {
            inputs,
            num_patterns: len,
        }
    }

    /// Rebuilds a pattern set from per-input signatures (the inverse of
    /// reading [`PatternSet::input_signature`] for every input), used by
    /// state snapshots.
    ///
    /// # Panics
    ///
    /// Panics if any signature covers a different number of patterns than
    /// `num_patterns` — callers deserialising untrusted data must validate
    /// lengths first.
    pub fn from_input_signatures(inputs: Vec<Signature>, num_patterns: usize) -> Self {
        assert!(
            inputs.iter().all(|s| s.len() == num_patterns),
            "every input signature must cover num_patterns patterns"
        );
        PatternSet {
            inputs,
            num_patterns,
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The signature (bit-parallel values) of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_signature(&self, i: usize) -> &Signature {
        &self.inputs[i]
    }

    /// The value of input `input` under pattern `pattern`.
    pub fn value(&self, input: usize, pattern: usize) -> bool {
        self.inputs[input].get_bit(pattern)
    }

    /// The full assignment of pattern `pattern` (one Boolean per input).
    pub fn assignment(&self, pattern: usize) -> Vec<bool> {
        self.inputs.iter().map(|s| s.get_bit(pattern)).collect()
    }

    /// Appends a pattern given as one Boolean per input (e.g. a SAT
    /// counter-example).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the input count.
    pub fn push_pattern(&mut self, assignment: &[bool]) {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment length must equal the number of inputs"
        );
        for (sig, &value) in self.inputs.iter_mut().zip(assignment.iter()) {
            sig.push(value);
        }
        self.num_patterns += 1;
    }

    /// Keeps only the pattern columns listed in `keep` (strictly
    /// ascending), renumbering them `0..keep.len()` — the column-dropping
    /// half of pattern compaction.  The caller decides *which* columns are
    /// dead (no surviving equivalence class disagrees on them); this method
    /// just rebuilds the per-input signatures over the kept columns.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty (an empty pattern set makes every node a
    /// constant candidate), not strictly ascending, or out of range.
    pub fn compact(&mut self, keep: &[usize]) {
        assert!(
            !keep.is_empty(),
            "compaction must keep at least one pattern"
        );
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "kept pattern columns must be strictly ascending"
        );
        assert!(
            *keep.last().expect("keep is non-empty") < self.num_patterns,
            "kept pattern column out of range"
        );
        for sig in &mut self.inputs {
            *sig = Signature::from_bits(keep.iter().map(|&c| sig.get_bit(c)));
        }
        self.num_patterns = keep.len();
    }

    /// Appends all patterns of `other` (which must have the same input
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn extend(&mut self, other: &PatternSet) {
        assert_eq!(
            self.num_inputs(),
            other.num_inputs(),
            "pattern sets must have the same number of inputs"
        );
        for p in 0..other.num_patterns() {
            self.push_pattern(&other.assignment(p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_covers_all_assignments() {
        let p = PatternSet::exhaustive(3);
        assert_eq!(p.num_patterns(), 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            seen.insert(p.assignment(i));
        }
        assert_eq!(seen.len(), 8);
        // Input 0 alternates fastest.
        assert_eq!(p.input_signature(0).to_binary_string(), "10101010");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = PatternSet::random(4, 100, 7).unwrap();
        let b = PatternSet::random(4, 100, 7).unwrap();
        let c = PatternSet::random(4, 100, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_patterns(), 100);
    }

    #[test]
    fn random_rejects_zero_patterns() {
        let err = PatternSet::random(4, 0, 7).unwrap_err();
        assert_eq!(err, PatternError::EmptyPatternSet { num_inputs: 4 });
        assert!(err.to_string().contains("4 inputs"));
    }

    #[test]
    fn paper_example_pattern_string() {
        // Section III-C: 10 simulation patterns over 5 inputs given as the
        // concatenation of five 10-bit strings; the first pattern is "01100".
        let strings = [
            "0111001011",
            "1010011011",
            "1110011000",
            "0000011111",
            "1010000101",
        ];
        let p = PatternSet::from_binary_strings(&strings);
        assert_eq!(p.num_patterns(), 10);
        assert_eq!(p.num_inputs(), 5);
        // Pattern 0 is the right-most column: inputs 1..5 = 1,1,0,1,1?  The
        // paper reads the first pattern as the first character of each row:
        // "0","1","1","0","1" → but with right-to-left storage pattern 9 is
        // the left-most column.
        let first_paper_pattern: Vec<bool> = (0..5).map(|i| p.value(i, 9)).collect();
        assert_eq!(first_paper_pattern, vec![false, true, true, false, true]);
    }

    #[test]
    fn push_and_extend() {
        let mut p = PatternSet::new(3);
        p.push_pattern(&[true, false, true]);
        p.push_pattern(&[false, false, true]);
        assert_eq!(p.num_patterns(), 2);
        assert_eq!(p.assignment(0), vec![true, false, true]);
        let mut q = PatternSet::new(3);
        q.push_pattern(&[true, true, true]);
        p.extend(&q);
        assert_eq!(p.num_patterns(), 3);
        assert_eq!(p.assignment(2), vec![true, true, true]);
    }

    #[test]
    fn compact_keeps_selected_columns_in_order() {
        let mut p = PatternSet::new(2);
        p.push_pattern(&[true, false]);
        p.push_pattern(&[false, true]);
        p.push_pattern(&[true, true]);
        p.push_pattern(&[false, false]);
        p.compact(&[1, 3]);
        assert_eq!(p.num_patterns(), 2);
        assert_eq!(p.assignment(0), vec![false, true]);
        assert_eq!(p.assignment(1), vec![false, false]);
        // Further growth works on the compacted set.
        p.push_pattern(&[true, true]);
        assert_eq!(p.num_patterns(), 3);
        assert_eq!(p.assignment(2), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn compact_rejects_empty_keep() {
        let mut p = PatternSet::exhaustive(2);
        p.compact(&[]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn compact_rejects_unordered_keep() {
        let mut p = PatternSet::exhaustive(2);
        p.compact(&[2, 1]);
    }

    #[test]
    fn from_input_signatures_round_trips() {
        let mut p = PatternSet::random(5, 100, 3).unwrap();
        p.push_pattern(&[true, false, true, true, false]);
        let inputs: Vec<Signature> = (0..p.num_inputs())
            .map(|i| p.input_signature(i).clone())
            .collect();
        let rebuilt = PatternSet::from_input_signatures(inputs, p.num_patterns());
        assert_eq!(rebuilt, p);
    }

    #[test]
    #[should_panic(expected = "num_patterns")]
    fn from_input_signatures_rejects_mismatched_lengths() {
        let _ = PatternSet::from_input_signatures(vec![Signature::zeros(3)], 4);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn push_wrong_arity_panics() {
        let mut p = PatternSet::new(2);
        p.push_pattern(&[true]);
    }
}
