//! Baseline k-LUT network simulation.
//!
//! As the paper observes (Section III), bitwise word-parallel tricks do not
//! directly apply to k-LUT nodes: the conventional simulator must, for each
//! pattern, extract the individual input bits of a LUT, form the truth-table
//! index and look up the output bit.  [`LutSimulator::run`] implements
//! exactly that per-pattern evaluation and is the baseline ("TL" columns of
//! Table I) that the STP-based simulator is compared against.
//!
//! Like the AIG state, the signatures live in a [`SignatureArena`] so a run
//! performs O(1) allocations.

use crate::arena::{SigRef, SignatureArena};
use crate::{PatternSet, Signature};
use netlist::{LutNetwork, LutNode, LutNodeId};

/// Simulation state of a k-LUT network: one arena row per node.
#[derive(Debug, Clone)]
pub struct LutSimState {
    arena: SignatureArena,
}

impl LutSimState {
    /// A borrowed view of the signature of `node`.
    pub fn signature(&self, node: LutNodeId) -> SigRef<'_> {
        self.arena.sig(node)
    }

    /// The signature of output `index` (complement applied).
    pub fn output_signature(&self, net: &LutNetwork, index: usize) -> Signature {
        let output = &net.outputs()[index];
        let sig = self.arena.to_signature(output.node);
        if output.complemented {
            sig.complement()
        } else {
            sig
        }
    }

    /// Number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.arena.num_patterns()
    }

    /// The backing signature arena.
    pub fn arena(&self) -> &SignatureArena {
        &self.arena
    }
}

/// Baseline per-pattern simulator for k-LUT networks.
#[derive(Debug, Clone, Copy)]
pub struct LutSimulator<'a> {
    net: &'a LutNetwork,
}

impl<'a> LutSimulator<'a> {
    /// Creates a simulator for the given network.
    pub fn new(net: &'a LutNetwork) -> Self {
        LutSimulator { net }
    }

    /// Simulates all nodes under the pattern set, pattern by pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set's input count differs from the network's.
    pub fn run(&self, patterns: &PatternSet) -> LutSimState {
        assert_eq!(
            patterns.num_inputs(),
            self.net.num_pis(),
            "pattern set input count must match the network"
        );
        let n = patterns.num_patterns();
        let mut arena = SignatureArena::new(self.net.num_nodes(), n);
        // Per-pattern evaluation: this is intentionally the "slow" baseline.
        for p in 0..n {
            for id in self.net.node_ids() {
                let value = match self.net.node(id) {
                    LutNode::Const0 => false,
                    LutNode::Input { position } => patterns.value(*position, p),
                    LutNode::Lut { fanins, function } => {
                        let mut index = 0usize;
                        for (k, &fanin) in fanins.iter().enumerate() {
                            if arena.sig(fanin).get_bit(p) {
                                index |= 1 << k;
                            }
                        }
                        function.get_bit(index)
                    }
                };
                if value {
                    arena.set_bit(id, p, true);
                }
            }
        }
        for id in self.net.node_ids() {
            arena.mark_written(id);
        }
        LutSimState { arena }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{lutmap, Aig};

    fn sample_networks() -> (Aig, LutNetwork) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 5);
        let g1 = aig.and(xs[0], xs[1]);
        let g2 = aig.xor(xs[2], xs[3]);
        let g3 = aig.mux(xs[4], g1, g2);
        let g4 = aig.or(g1, g2);
        aig.add_output("o0", g3);
        aig.add_output("o1", !g4);
        let lut = lutmap::map_to_luts(&aig, 4);
        (aig, lut)
    }

    #[test]
    fn lut_simulation_matches_evaluation() {
        let (_, lut) = sample_networks();
        let patterns = PatternSet::exhaustive(5);
        let state = LutSimulator::new(&lut).run(&patterns);
        for p in 0..32 {
            let assignment = patterns.assignment(p);
            let expected = lut.evaluate(&assignment);
            for (o, &exp) in expected.iter().enumerate() {
                assert_eq!(state.output_signature(&lut, o).get_bit(p), exp);
            }
        }
    }

    #[test]
    fn lut_simulation_matches_aig_simulation() {
        let (aig, lut) = sample_networks();
        let patterns = PatternSet::random(5, 300, 11).unwrap();
        let aig_state = crate::AigSimulator::new(&aig).run(&patterns);
        let lut_state = LutSimulator::new(&lut).run(&patterns);
        for o in 0..aig.num_outputs() {
            assert_eq!(
                aig_state.output_signature(&aig, o),
                lut_state.output_signature(&lut, o),
                "output {o} differs between AIG and mapped LUT network"
            );
        }
    }

    #[test]
    fn constant_node_signature_is_zero() {
        let (_, lut) = sample_networks();
        let patterns = PatternSet::random(5, 64, 3).unwrap();
        let state = LutSimulator::new(&lut).run(&patterns);
        assert!(state.signature(0).is_const0());
        assert_eq!(state.num_patterns(), 64);
    }
}
