//! Property-based tests of the netlist substrate: structural hashing, AIGER
//! round trips, cut truth tables and LUT mapping on randomly generated AIGs.

use netlist::cuts::{cut_truth_table, enumerate_cuts, CutParams};
use netlist::{lutmap, read_aiger_str, write_aiger_string, Aig, Lit};
use proptest::prelude::*;

/// A recipe for a random AIG: a list of gate descriptors over a small input
/// set.
#[derive(Debug, Clone)]
struct AigRecipe {
    num_inputs: usize,
    gates: Vec<(u8, usize, usize, bool, bool)>,
}

fn arb_recipe() -> impl Strategy<Value = AigRecipe> {
    (
        2usize..6,
        proptest::collection::vec(
            (
                0u8..5,
                any::<usize>(),
                any::<usize>(),
                any::<bool>(),
                any::<bool>(),
            ),
            1..30,
        ),
    )
        .prop_map(|(num_inputs, gates)| AigRecipe { num_inputs, gates })
}

fn build(recipe: &AigRecipe) -> Aig {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs("x", recipe.num_inputs);
    let mut pool: Vec<Lit> = inputs;
    for &(op, a, b, na, nb) in &recipe.gates {
        let la = pool[a % pool.len()].complement_if(na);
        let lb = pool[b % pool.len()].complement_if(nb);
        let gate = match op % 5 {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.nand(la, lb),
            _ => {
                let lc = pool[(a ^ b) % pool.len()];
                aig.mux(la, lb, lc)
            }
        };
        pool.push(gate);
    }
    let outputs = pool.len().min(4);
    for (i, lit) in pool.iter().rev().take(outputs).enumerate() {
        aig.add_output(format!("y{i}"), *lit);
    }
    aig
}

fn exhaustive_outputs(aig: &Aig) -> Vec<Vec<bool>> {
    (0..(1usize << aig.num_inputs()))
        .map(|bits| {
            let assignment: Vec<bool> = (0..aig.num_inputs())
                .map(|j| (bits >> j) & 1 == 1)
                .collect();
            aig.evaluate(&assignment)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AIGER text round trips preserve the function exactly.
    #[test]
    fn aiger_round_trip(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let text = write_aiger_string(&aig);
        let parsed = read_aiger_str(&text).expect("own output parses");
        prop_assert_eq!(parsed.num_inputs(), aig.num_inputs());
        prop_assert_eq!(parsed.num_outputs(), aig.num_outputs());
        prop_assert_eq!(exhaustive_outputs(&parsed), exhaustive_outputs(&aig));
    }

    /// Cleanup never changes the function and never grows the network.
    #[test]
    fn cleanup_preserves_function(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let (cleaned, _) = aig.cleanup();
        prop_assert!(cleaned.num_ands() <= aig.num_ands());
        prop_assert_eq!(exhaustive_outputs(&cleaned), exhaustive_outputs(&aig));
    }

    /// LUT mapping preserves the function for several values of k.
    #[test]
    fn lut_mapping_preserves_function(recipe in arb_recipe(), k in 2usize..7) {
        let aig = build(&recipe);
        let lut = lutmap::map_to_luts(&aig, k);
        prop_assert!(lut.max_fanin() <= k);
        for bits in 0..(1usize << aig.num_inputs()) {
            let assignment: Vec<bool> =
                (0..aig.num_inputs()).map(|j| (bits >> j) & 1 == 1).collect();
            prop_assert_eq!(lut.evaluate(&assignment), aig.evaluate(&assignment));
        }
    }

    /// Every enumerated cut's truth table matches the node function.
    #[test]
    fn cut_truth_tables_are_correct(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let cuts = enumerate_cuts(&aig, CutParams { max_leaves: 4, max_cuts: 4 });
        // Check the first few AND nodes exhaustively.
        for node in aig.and_ids().take(6) {
            for cut in cuts[node].cuts().iter().take(2) {
                if cut.leaves() == [node] {
                    continue;
                }
                let tt = cut_truth_table(&aig, node, cut);
                // Evaluate the whole network for every assignment of the
                // inputs and compare the node value with the cut TT applied
                // to the leaf values.
                for bits in 0..(1usize << aig.num_inputs()) {
                    let assignment: Vec<bool> =
                        (0..aig.num_inputs()).map(|j| (bits >> j) & 1 == 1).collect();
                    let mut values = vec![false; aig.num_nodes()];
                    for id in aig.node_ids() {
                        values[id] = match aig.node(id) {
                            netlist::AigNode::Const0 => false,
                            netlist::AigNode::Input { position } => assignment[*position],
                            netlist::AigNode::And { fanin0, fanin1 } => {
                                (values[fanin0.node()] ^ fanin0.is_complemented())
                                    && (values[fanin1.node()] ^ fanin1.is_complemented())
                            }
                        };
                    }
                    let leaf_values: Vec<bool> =
                        cut.leaves().iter().map(|&l| values[l]).collect();
                    prop_assert_eq!(tt.evaluate(&leaf_values), values[node]);
                }
            }
        }
    }

    /// Structural hashing is idempotent: rebuilding an AIG gate by gate
    /// produces no more AND nodes than the original.
    #[test]
    fn rebuilding_never_grows(recipe in arb_recipe()) {
        let aig = build(&recipe);
        let mut rebuilt = Aig::new();
        let inputs: Vec<Lit> = (0..aig.num_inputs())
            .map(|i| rebuilt.add_input(aig.input_name(i).to_string()))
            .collect();
        let outs = rebuilt.append(&aig, &inputs);
        for (i, o) in outs.iter().enumerate() {
            rebuilt.add_output(format!("y{i}"), *o);
        }
        prop_assert!(rebuilt.num_ands() <= aig.num_ands());
        prop_assert_eq!(exhaustive_outputs(&rebuilt), exhaustive_outputs(&aig));
    }
}
