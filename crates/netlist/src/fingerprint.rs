//! Canonical, renumbering-invariant AIG fingerprints.
//!
//! [`canonical_fingerprint`] hashes the *structure* of an [`Aig`] — what the
//! nodes compute and how the outputs tap them — rather than how the nodes
//! happen to be numbered.  Two parses of the same circuit that assign
//! different node ids (any valid topological order) produce the same
//! fingerprint; changing a gate, an inversion, an input position or an
//! output tap changes it.
//!
//! The sweep service uses this to re-adopt spilled jobs: a client that
//! re-parsed (and renumbered) the same netlist still hits its checkpoint.
//! It deliberately complements — not replaces — the strict positional
//! fingerprint used by the checkpoint codec, which must reject *any*
//! renumbering because a checkpoint's merge log is bound to concrete node
//! ids.
//!
//! ## Construction
//!
//! Every node gets a canonical code computed bottom-up:
//!
//! * the constant node has a fixed code,
//! * an input's code depends only on its position (position is semantic:
//!   it is the index into simulation patterns and AIGER input order),
//! * an AND's code hashes the *unordered* pair of its fanin edge codes,
//!   where an edge code is the fanin's node code salted by the complement
//!   bit.
//!
//! A node's code therefore depends only on the logic cone below it, never
//! on node ids.  The fingerprint combines the input/output counts, the
//! output edge codes in output order, and an order-independent multiset
//! accumulation over all node codes (so dangling logic — which sweeping
//! still processes — is covered).

use crate::aig::{Aig, AigNode, Lit};

/// `splitmix64` finalizer: a cheap, well-distributed 64-bit bijection.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds `v` into a running hash. Not commutative: `fold(fold(s, a), b)`
/// differs from `fold(fold(s, b), a)`.
fn fold(acc: u64, v: u64) -> u64 {
    mix(acc ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

const TAG_CONST0: u64 = 0x5354_5000_0000_0001; // "STP"-salted tags
const TAG_INPUT: u64 = 0x5354_5000_0000_0002;
const TAG_AND: u64 = 0x5354_5000_0000_0003;
const TAG_SHAPE: u64 = 0x5354_5000_0000_0004;
const COMPLEMENT_SALT: u64 = 0x5354_5000_0000_0005;
const TAG_LATCH: u64 = 0x5354_5000_0000_0006;

/// The canonical code of an edge: the driving node's code, salted when the
/// edge is complemented.
fn edge_code(node_code: u64, lit: Lit) -> u64 {
    if lit.is_complemented() {
        mix(node_code ^ COMPLEMENT_SALT)
    } else {
        node_code
    }
}

/// A topological-order-invariant structural fingerprint of an AIG.
///
/// Invariant under node renumbering (any valid topological reordering of
/// the same gates); sensitive to the gates themselves, edge complementation,
/// input positions, output order and output polarities, to dangling
/// (unreferenced) logic, and — when present — to the latch table (positions
/// and initial values).
///
/// ```
/// use netlist::{canonical_fingerprint, Aig};
///
/// // Same circuit, gates created in a different order → same fingerprint.
/// let mut fwd = Aig::new();
/// let a = fwd.add_input("a");
/// let b = fwd.add_input("b");
/// let c = fwd.add_input("c");
/// let ab = fwd.and(a, b);
/// let bc = fwd.and(b, c);
/// let y = fwd.and(ab, bc);
/// fwd.add_output("y", y);
///
/// let mut rev = Aig::new();
/// let a = rev.add_input("a");
/// let b = rev.add_input("b");
/// let c = rev.add_input("c");
/// let bc = rev.and(b, c); // built first: different node id than in `fwd`
/// let ab = rev.and(a, b);
/// let y = rev.and(ab, bc);
/// rev.add_output("y", y);
///
/// assert_eq!(canonical_fingerprint(&fwd), canonical_fingerprint(&rev));
/// ```
pub fn canonical_fingerprint(aig: &Aig) -> u64 {
    // Index order is a valid topological order (every AND's fanins have
    // strictly smaller indices), so one forward pass suffices.
    let mut codes = vec![0u64; aig.num_nodes()];
    let mut multiset: u64 = 0;
    for id in aig.node_ids() {
        let code = match *aig.node(id) {
            AigNode::Const0 => mix(TAG_CONST0),
            AigNode::Input { position } => fold(TAG_INPUT, position as u64),
            AigNode::And { fanin0, fanin1 } => {
                let c0 = edge_code(codes[fanin0.node()], fanin0);
                let c1 = edge_code(codes[fanin1.node()], fanin1);
                let (lo, hi) = if c0 <= c1 { (c0, c1) } else { (c1, c0) };
                fold(fold(TAG_AND, lo), hi)
            }
        };
        codes[id] = code;
        // Order-independent accumulation over the node multiset: covers
        // dangling cones that no output reaches.
        multiset = multiset.wrapping_add(mix(code));
    }

    let mut acc = fold(TAG_SHAPE, aig.num_inputs() as u64);
    acc = fold(acc, aig.num_outputs() as u64);
    for output in aig.outputs() {
        acc = fold(acc, edge_code(codes[output.lit.node()], output.lit));
    }
    // The latch section only contributes when latches exist, so the
    // fingerprints of purely combinational networks are unchanged by the
    // sequential extension (spilled-job keys, bench baselines).
    if aig.num_latches() > 0 {
        acc = fold(acc, fold(TAG_LATCH, aig.num_latches() as u64));
        for latch in aig.latches() {
            acc = fold(acc, latch.state_input as u64);
            acc = fold(acc, latch.next_output as u64);
            acc = fold(
                acc,
                match latch.init {
                    crate::aig::LatchInit::Zero => 0,
                    crate::aig::LatchInit::One => 1,
                    crate::aig::LatchInit::X => 2,
                },
            );
        }
    }
    acc = fold(acc, multiset);
    mix(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small deterministic generator for test-local shuffling decisions.
    struct XorShift(u64);
    impl XorShift {
        fn new(seed: u64) -> Self {
            XorShift(seed | 1)
        }
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Rebuilds `aig` by re-adding its AND gates in a random (but valid)
    /// topological order, renumbering every AND node.  Structural hashing
    /// reproduces the same gates under new ids, so the result is the same
    /// circuit with shuffled node numbering.
    fn rebuild_shuffled(aig: &Aig, seed: u64) -> Aig {
        let mut rng = XorShift::new(seed);
        let mut out = Aig::new();
        let mut map = vec![Lit::positive(0); aig.num_nodes()];
        for (position, &id) in aig.inputs().iter().enumerate() {
            map[id] = out.add_input(aig.input_name(position).to_string());
        }
        // Kahn's algorithm with a randomly chosen ready node each step.
        let ands: Vec<usize> = aig.and_ids().collect();
        let mut remaining: Vec<usize> = ands.clone();
        let mut placed = vec![false; aig.num_nodes()];
        for id in aig.node_ids() {
            if !aig.node(id).is_and() {
                placed[id] = true;
            }
        }
        while !remaining.is_empty() {
            let ready: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&id| aig.node(id).fanins().iter().all(|f| placed[f.node()]))
                .collect();
            let pick = ready[rng.below(ready.len())];
            let fanins = aig.node(pick).fanins();
            let f0 = map[fanins[0].node()].complement_if(fanins[0].is_complemented());
            let f1 = map[fanins[1].node()].complement_if(fanins[1].is_complemented());
            map[pick] = out.and(f0, f1);
            placed[pick] = true;
            remaining.retain(|&id| id != pick);
        }
        for output in aig.outputs() {
            let lit = map[output.lit.node()].complement_if(output.lit.is_complemented());
            out.add_output(output.name.clone(), lit);
        }
        out
    }

    /// A seeded random DAG with some sharing, inversions and a dangling cone.
    fn random_aig(seed: u64, num_inputs: usize, num_gates: usize) -> Aig {
        let mut rng = XorShift::new(seed);
        let mut aig = Aig::new();
        let mut lits: Vec<Lit> = (0..num_inputs)
            .map(|i| aig.add_input(format!("i{i}")))
            .collect();
        for _ in 0..num_gates {
            let a = lits[rng.below(lits.len())].complement_if(rng.next() & 1 == 1);
            let b = lits[rng.below(lits.len())].complement_if(rng.next() & 1 == 1);
            let g = aig.and(a, b);
            if !g.is_constant() {
                lits.push(g);
            }
        }
        let num_outputs = 1 + rng.below(3.min(lits.len()));
        for o in 0..num_outputs {
            let lit = lits[rng.below(lits.len())].complement_if(rng.next() & 1 == 1);
            aig.add_output(format!("o{o}"), lit);
        }
        aig
    }

    #[test]
    fn identical_builds_agree() {
        let a = random_aig(7, 4, 12);
        let b = random_aig(7, 4, 12);
        assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn renumbering_is_invisible() {
        let aig = random_aig(42, 5, 24);
        for seed in 1..6u64 {
            let shuffled = rebuild_shuffled(&aig, seed);
            assert_eq!(shuffled.num_ands(), aig.num_ands());
            assert_eq!(
                canonical_fingerprint(&shuffled),
                canonical_fingerprint(&aig),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn gate_mutation_changes_the_fingerprint() {
        let mut a = Aig::new();
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.and(x, y);
        a.add_output("o", g);

        let mut b = Aig::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g = b.and(x, !y); // complemented fanin
        b.add_output("o", g);

        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn output_polarity_and_order_matter() {
        let mut a = Aig::new();
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.and(x, y);
        a.add_output("o0", g);
        a.add_output("o1", x);

        let mut b = Aig::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g = b.and(x, y);
        b.add_output("o0", !g);
        b.add_output("o1", x);

        let mut c = Aig::new();
        let x = c.add_input("x");
        let y = c.add_input("y");
        let g = c.and(x, y);
        c.add_output("o0", x);
        c.add_output("o1", g);

        let fa = canonical_fingerprint(&a);
        assert_ne!(fa, canonical_fingerprint(&b));
        assert_ne!(fa, canonical_fingerprint(&c));
    }

    #[test]
    fn dangling_logic_is_covered() {
        let mut a = Aig::new();
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.and(x, y);
        a.add_output("o", g);

        let mut b = Aig::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g = b.and(x, y);
        b.add_output("o", g);
        b.and(x, !y); // dangling

        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn latch_registration_and_init_are_semantic() {
        use crate::aig::LatchInit;
        let build = |init: Option<LatchInit>| {
            let mut aig = Aig::new();
            let d = aig.add_input("d");
            let q = aig.add_input("q");
            let g = aig.and(d, !q);
            aig.add_output("q_next", g);
            if let Some(init) = init {
                aig.define_latch(1, 0, init);
            }
            aig
        };
        let plain = canonical_fingerprint(&build(None));
        let zero = canonical_fingerprint(&build(Some(LatchInit::Zero)));
        let x = canonical_fingerprint(&build(Some(LatchInit::X)));
        assert_ne!(plain, zero, "registering a latch changes the fingerprint");
        assert_ne!(zero, x, "the init value changes the fingerprint");
    }

    #[test]
    fn input_positions_are_semantic() {
        let mut a = Aig::new();
        let x = a.add_input("x");
        let _y = a.add_input("y");
        a.add_output("o", x);

        let mut b = Aig::new();
        let _y = b.add_input("y");
        let x = b.add_input("x");
        b.add_output("o", x);

        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Shuffling node ids (rebuilding in any topological order)
            /// never changes the fingerprint.
            fn shuffle_invariance(seed in any::<u64>(), shuffle_seed in any::<u64>()) {
                let aig = random_aig(seed, 4 + (seed % 4) as usize, 20);
                let shuffled = rebuild_shuffled(&aig, shuffle_seed);
                prop_assert_eq!(
                    canonical_fingerprint(&aig),
                    canonical_fingerprint(&shuffled)
                );
            }

            /// Mutating one gate (complementing a fanin edge during the
            /// rebuild) changes the fingerprint.
            fn mutation_sensitivity(seed in any::<u64>()) {
                let mut rng = XorShift::new(seed);
                let aig = random_aig(seed, 4, 16);
                let ands: Vec<usize> = aig.and_ids().collect();
                prop_assume!(!ands.is_empty());
                let victim = ands[rng.below(ands.len())];

                // Rebuild identically except one fanin edge of `victim` is
                // complemented.
                let mut out = Aig::new();
                let mut map = vec![Lit::positive(0); aig.num_nodes()];
                for (position, &id) in aig.inputs().iter().enumerate() {
                    map[id] = out.add_input(aig.input_name(position).to_string());
                }
                for id in aig.and_ids() {
                    let fanins = aig.node(id).fanins();
                    let mut f0 = map[fanins[0].node()].complement_if(fanins[0].is_complemented());
                    let f1 = map[fanins[1].node()].complement_if(fanins[1].is_complemented());
                    if id == victim {
                        f0 = !f0;
                    }
                    map[id] = out.and(f0, f1);
                }
                for output in aig.outputs() {
                    let lit = map[output.lit.node()].complement_if(output.lit.is_complemented());
                    out.add_output(output.name.clone(), lit);
                }
                prop_assert!(
                    canonical_fingerprint(&aig) != canonical_fingerprint(&out)
                );
            }
        }
    }
}
