//! Depth-oriented LUT mapping: covering an AIG with k-feasible cuts to
//! produce a [`LutNetwork`].
//!
//! The paper's simulator operates on k-LUT networks (6-LUTs in Table I) and
//! its cut algorithm "maps the nodes which are not simulated into k-LUTs"
//! (Section III-A).  This module provides the standard mapping step: for each
//! AND node choose a best k-feasible cut (minimum depth, ties broken by
//! fewer leaves), then cover the network from the outputs, instantiating one
//! LUT per selected node whose function is the cut's truth table.

use crate::cuts::{cut_truth_table, enumerate_cuts, Cut, CutParams};
use crate::{Aig, AigNode, LutNetwork, LutNodeId, NodeId};
use std::collections::HashMap;
use truthtable::TruthTable;

/// A chosen cut per AND node together with its mapping cost.
#[derive(Debug, Clone)]
struct MappedCut {
    cut: Cut,
    depth: usize,
}

/// Maps an AIG into a k-LUT network with LUTs of at most `k` inputs.
///
/// The resulting network is functionally equivalent to the AIG (its outputs
/// compute the same functions of the same primary inputs, in the same
/// order); this is asserted by the crate's property tests.
///
/// # Panics
///
/// Panics if `k` is zero or larger than [`TruthTable::MAX_VARS`].
pub fn map_to_luts(aig: &Aig, k: usize) -> LutNetwork {
    assert!((1..=TruthTable::MAX_VARS).contains(&k), "invalid LUT size");
    let params = CutParams {
        max_leaves: k,
        max_cuts: 8,
    };
    let cut_sets = enumerate_cuts(aig, params);

    // Choose the best cut per AND node: minimise mapped depth, break ties by
    // leaf count (area proxy).
    let mut best: Vec<Option<MappedCut>> = vec![None; aig.num_nodes()];
    for id in aig.node_ids() {
        match aig.node(id) {
            AigNode::Const0 | AigNode::Input { .. } => {}
            AigNode::And { .. } => {
                let mut chosen: Option<MappedCut> = None;
                for cut in cut_sets[id].cuts() {
                    // Skip the trivial cut {id}: a LUT cannot feed itself.
                    if cut.size() == 1 && cut.leaves()[0] == id {
                        continue;
                    }
                    let depth = 1 + cut
                        .leaves()
                        .iter()
                        .map(|&leaf| best[leaf].as_ref().map_or(0, |m| m.depth))
                        .max()
                        .unwrap_or(0);
                    let better = match &chosen {
                        None => true,
                        Some(current) => {
                            depth < current.depth
                                || (depth == current.depth && cut.size() < current.cut.size())
                        }
                    };
                    if better {
                        chosen = Some(MappedCut {
                            cut: cut.clone(),
                            depth,
                        });
                    }
                }
                best[id] = Some(chosen.expect("every AND node has at least one non-trivial cut"));
            }
        }
    }

    // Cover from the outputs: walk the chosen cuts, instantiating LUTs for
    // every node that is actually needed.
    let mut net = LutNetwork::new();
    let mut node_map: HashMap<NodeId, LutNodeId> = HashMap::new();
    node_map.insert(0, 0); // constant
    for (pos, &input) in aig.inputs().iter().enumerate() {
        let lut_id = net.add_input(aig.input_name(pos).to_string());
        node_map.insert(input, lut_id);
    }

    // Recursively instantiate the LUT of an AIG node.
    fn instantiate(
        aig: &Aig,
        node: NodeId,
        best: &[Option<MappedCut>],
        net: &mut LutNetwork,
        node_map: &mut HashMap<NodeId, LutNodeId>,
    ) -> LutNodeId {
        if let Some(&mapped) = node_map.get(&node) {
            return mapped;
        }
        let chosen = best[node]
            .as_ref()
            .expect("only AND nodes reach instantiate without a map entry");
        let mut fanins = Vec::with_capacity(chosen.cut.size());
        for &leaf in chosen.cut.leaves() {
            let mapped = instantiate(aig, leaf, best, net, node_map);
            fanins.push(mapped);
        }
        let function = cut_truth_table(aig, node, &chosen.cut);
        let lut_id = net.add_lut(fanins, function);
        node_map.insert(node, lut_id);
        lut_id
    }

    for output in aig.outputs() {
        let driver = output.lit.node();
        let lut_id = instantiate(aig, driver, &best, &mut net, &mut node_map);
        net.add_output(output.name.clone(), lut_id, output.lit.is_complemented());
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_like_aig(width: usize) -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_inputs("a", width);
        let b = aig.add_inputs("b", width);
        let mut carry = crate::Lit::FALSE;
        for i in 0..width {
            let sum_i = aig.xor(a[i], b[i]);
            let sum = aig.xor(sum_i, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(sum_i, carry);
            carry = aig.or(c1, c2);
            aig.add_output(format!("s{i}"), sum);
        }
        aig.add_output("cout", carry);
        aig
    }

    fn check_equivalent(aig: &Aig, lut: &LutNetwork, num_inputs: usize) {
        let limit = 1usize << num_inputs.min(10);
        for i in 0..limit {
            let assignment: Vec<bool> = (0..num_inputs).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(
                aig.evaluate(&assignment),
                lut.evaluate(&assignment),
                "mismatch for pattern {i}"
            );
        }
    }

    #[test]
    fn mapping_preserves_functionality() {
        let aig = adder_like_aig(3);
        for k in [2, 4, 6] {
            let lut = map_to_luts(&aig, k);
            assert_eq!(lut.num_pis(), aig.num_inputs());
            assert_eq!(lut.num_pos(), aig.num_outputs());
            assert!(lut.max_fanin() <= k);
            check_equivalent(&aig, &lut, 6);
        }
    }

    #[test]
    fn larger_k_means_fewer_luts() {
        let aig = adder_like_aig(4);
        let lut2 = map_to_luts(&aig, 2);
        let lut6 = map_to_luts(&aig, 6);
        assert!(lut6.num_luts() <= lut2.num_luts());
        assert!(lut6.depth() <= lut2.depth());
    }

    #[test]
    fn outputs_on_inputs_and_constants() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        aig.add_output("direct", a);
        aig.add_output("inverted", !a);
        aig.add_output("zero", crate::Lit::FALSE);
        aig.add_output("one", crate::Lit::TRUE);
        let lut = map_to_luts(&aig, 4);
        assert_eq!(lut.evaluate(&[true]), vec![true, false, false, true]);
        assert_eq!(lut.evaluate(&[false]), vec![false, true, false, true]);
    }

    #[test]
    fn xor_chain_maps_into_single_lut() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.xor(acc, x);
        }
        aig.add_output("parity", acc);
        let lut = map_to_luts(&aig, 6);
        assert_eq!(lut.num_luts(), 1, "a 4-input parity fits in one 6-LUT");
        check_equivalent(&aig, &lut, 4);
    }
}
