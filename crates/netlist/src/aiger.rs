//! AIGER readers and writers (ASCII `aag` and binary `aig` formats).
//!
//! Sequential elements (latches) are supported by *combinational
//! abstraction*: each latch output becomes an extra primary input and each
//! latch next-state function becomes an extra primary output.  This matches
//! how a combinational SAT sweeper treats the HWMCC model-checking
//! benchmarks referenced in the paper.

use crate::{Aig, AigNode, Lit};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced while reading or writing AIGER files.
#[derive(Debug)]
pub enum AigerError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not follow the AIGER format.
    Format(String),
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::Io(e) => write!(f, "aiger i/o error: {e}"),
            AigerError::Format(msg) => write!(f, "invalid aiger file: {msg}"),
        }
    }
}

impl Error for AigerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AigerError::Io(e) => Some(e),
            AigerError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for AigerError {
    fn from(e: std::io::Error) -> Self {
        AigerError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> AigerError {
    AigerError::Format(msg.into())
}

/// Reads an AIGER file (ASCII or binary, detected from the header).
///
/// # Errors
///
/// Returns [`AigerError`] on I/O failure or malformed content.
pub fn read_aiger(path: impl AsRef<Path>) -> Result<Aig, AigerError> {
    let bytes = fs::read(path)?;
    read_aiger_bytes(&bytes)
}

/// Parses an ASCII AIGER description from a string.
///
/// # Errors
///
/// Returns [`AigerError::Format`] on malformed content.
pub fn read_aiger_str(text: &str) -> Result<Aig, AigerError> {
    read_aiger_bytes(text.as_bytes())
}

/// Parses AIGER content from raw bytes (ASCII `aag` or binary `aig`).
///
/// # Errors
///
/// Returns [`AigerError::Format`] on malformed content.
pub fn read_aiger_bytes(bytes: &[u8]) -> Result<Aig, AigerError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| format_err("missing header line"))?;
    let header =
        std::str::from_utf8(&bytes[..header_end]).map_err(|_| format_err("header is not utf-8"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 {
        return Err(format_err("header must be '<fmt> M I L O A'"));
    }
    let parse = |s: &str| -> Result<usize, AigerError> {
        s.parse::<usize>()
            .map_err(|_| format_err(format!("invalid number '{s}' in header")))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    // The ASCII format allows M to exceed I+L+A (unused variable indices);
    // the binary format requires equality.
    if m < i + l + a || (fields[0] == "aig" && m != i + l + a) {
        return Err(format_err(format!(
            "inconsistent header: M={m} but I+L+A={}",
            i + l + a
        )));
    }
    match fields[0] {
        "aag" => {
            let body = std::str::from_utf8(&bytes[header_end + 1..])
                .map_err(|_| format_err("ascii body is not utf-8"))?;
            read_ascii(body, m, i, l, o, a)
        }
        "aig" => read_binary(&bytes[header_end + 1..], m, i, l, o, a),
        other => Err(format_err(format!("unknown format tag '{other}'"))),
    }
}

/// Maps an AIGER literal to a [`Lit`] using `var_map` (AIGER variable index
/// to node id).
fn map_lit(aiger_lit: usize, var_map: &[Option<Lit>]) -> Result<Lit, AigerError> {
    let var = aiger_lit / 2;
    let base = var_map.get(var).copied().flatten().ok_or_else(|| {
        format_err(format!(
            "literal {aiger_lit} references undefined var {var}"
        ))
    })?;
    Ok(base.complement_if(aiger_lit % 2 == 1))
}

#[allow(clippy::too_many_arguments)]
fn finish(
    mut aig: Aig,
    var_map: &[Option<Lit>],
    latch_next: &[usize],
    output_lits: &[usize],
) -> Result<Aig, AigerError> {
    for (idx, &lit) in output_lits.iter().enumerate() {
        let lit = map_lit(lit, var_map)?;
        aig.add_output(format!("po{idx}"), lit);
    }
    for (idx, &next) in latch_next.iter().enumerate() {
        let lit = map_lit(next, var_map)?;
        aig.add_output(format!("latch_next{idx}"), lit);
    }
    Ok(aig)
}

fn read_ascii(
    body: &str,
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
) -> Result<Aig, AigerError> {
    let mut lines = body.lines();
    let mut next_line = |what: &str| -> Result<&str, AigerError> {
        lines
            .next()
            .ok_or_else(|| format_err(format!("unexpected end of file while reading {what}")))
    };
    let mut aig = Aig::new();
    let mut var_map: Vec<Option<Lit>> = vec![None; m + 1];
    var_map[0] = Some(Lit::FALSE);

    // Inputs.
    for idx in 0..i {
        let line = next_line("inputs")?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err(format!("invalid input literal '{line}'")))?;
        if lit % 2 != 0 {
            return Err(format_err("input literal must be even"));
        }
        let input = aig.add_input(format!("pi{idx}"));
        var_map[lit / 2] = Some(input);
    }
    // Latches: output side becomes an extra PI.
    let mut latch_next = Vec::with_capacity(l);
    for idx in 0..l {
        let line = next_line("latches")?;
        let mut parts = line.split_whitespace();
        let q: usize = parts
            .next()
            .ok_or_else(|| format_err("latch line missing literal"))?
            .parse()
            .map_err(|_| format_err("invalid latch literal"))?;
        let next: usize = parts
            .next()
            .ok_or_else(|| format_err("latch line missing next-state literal"))?
            .parse()
            .map_err(|_| format_err("invalid latch next-state literal"))?;
        let latch = aig.add_input(format!("latch{idx}"));
        var_map[q / 2] = Some(latch);
        latch_next.push(next);
    }
    // Outputs.
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = next_line("outputs")?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err(format!("invalid output literal '{line}'")))?;
        output_lits.push(lit);
    }
    // AND gates.  The ASCII format allows definitions in any order, so gather
    // them first and insert in passes until every fanin is defined.
    let mut pending: Vec<(usize, usize, usize)> = Vec::with_capacity(a);
    for _ in 0..a {
        let line = next_line("and gates")?;
        let mut parts = line.split_whitespace();
        let mut next_num = |what: &str| -> Result<usize, AigerError> {
            parts
                .next()
                .ok_or_else(|| format_err(format!("and line missing {what}")))?
                .parse()
                .map_err(|_| format_err(format!("invalid {what}")))
        };
        let lhs = next_num("lhs")?;
        let rhs0 = next_num("rhs0")?;
        let rhs1 = next_num("rhs1")?;
        if lhs % 2 != 0 {
            return Err(format_err("and gate lhs must be even"));
        }
        pending.push((lhs, rhs0, rhs1));
    }
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&(lhs, rhs0, rhs1)| {
            let ready = var_map[rhs0 / 2].is_some() && var_map[rhs1 / 2].is_some();
            if ready {
                let f0 = map_lit(rhs0, &var_map).expect("fanin checked defined");
                let f1 = map_lit(rhs1, &var_map).expect("fanin checked defined");
                // Constant folding or structural hashing may return any
                // literal (possibly complemented); the map stores it as-is.
                let lit = aig.and(f0, f1);
                var_map[lhs / 2] = Some(lit);
            }
            !ready
        });
        if pending.len() == before {
            return Err(format_err(
                "cyclic or dangling and-gate definitions in aag body",
            ));
        }
    }
    finish(aig, &var_map, &latch_next, &output_lits)
}

fn read_binary(
    body: &[u8],
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
) -> Result<Aig, AigerError> {
    let mut aig = Aig::new();
    let mut var_map: Vec<Option<Lit>> = vec![None; m + 1];
    var_map[0] = Some(Lit::FALSE);
    // In the binary format inputs are implicitly variables 1..=i.
    for idx in 0..i {
        let input = aig.add_input(format!("pi{idx}"));
        var_map[idx + 1] = Some(input);
    }
    let mut cursor = 0usize;
    let read_line = |cursor: &mut usize| -> Result<String, AigerError> {
        let start = *cursor;
        while *cursor < body.len() && body[*cursor] != b'\n' {
            *cursor += 1;
        }
        let line = std::str::from_utf8(&body[start..*cursor])
            .map_err(|_| format_err("non-utf8 text section"))?
            .to_string();
        *cursor += 1; // skip newline
        Ok(line)
    };
    // Latches: "<next>" per line; latch outputs are variables i+1..=i+l.
    let mut latch_next = Vec::with_capacity(l);
    for idx in 0..l {
        let line = read_line(&mut cursor)?;
        let next: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err("invalid latch next-state literal"))?;
        let latch = aig.add_input(format!("latch{idx}"));
        var_map[i + idx + 1] = Some(latch);
        latch_next.push(next);
    }
    // Outputs.
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = read_line(&mut cursor)?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err("invalid output literal"))?;
        output_lits.push(lit);
    }
    // AND gates, delta-encoded.
    let read_delta = |cursor: &mut usize| -> Result<usize, AigerError> {
        let mut value = 0usize;
        let mut shift = 0u32;
        loop {
            if *cursor >= body.len() {
                return Err(format_err("unexpected end of binary and-gate section"));
            }
            let byte = body[*cursor];
            *cursor += 1;
            value |= ((byte & 0x7f) as usize) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    for idx in 0..a {
        let lhs = 2 * (i + l + idx + 1);
        let delta0 = read_delta(&mut cursor)?;
        let delta1 = read_delta(&mut cursor)?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| format_err("invalid delta0"))?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| format_err("invalid delta1"))?;
        let f0 = map_lit(rhs0, &var_map)?;
        let f1 = map_lit(rhs1, &var_map)?;
        let lit = aig.and(f0, f1);
        var_map[lhs / 2] = Some(lit);
    }
    finish(aig, &var_map, &latch_next, &output_lits)
}

/// Serialises an AIG to the ASCII AIGER format.
pub fn write_aiger_string(aig: &Aig) -> String {
    // Assign AIGER variable indices: inputs first, then AND nodes in
    // topological (index) order.
    let mut var_of_node: Vec<usize> = vec![0; aig.num_nodes()];
    let mut next_var = 1usize;
    for &input in aig.inputs() {
        var_of_node[input] = next_var;
        next_var += 1;
    }
    let mut and_nodes = Vec::new();
    for id in aig.node_ids() {
        if aig.node(id).is_and() {
            var_of_node[id] = next_var;
            next_var += 1;
            and_nodes.push(id);
        }
    }
    let lit_of =
        |lit: Lit| -> usize { 2 * var_of_node[lit.node()] + lit.is_complemented() as usize };
    let m = next_var - 1;
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        m,
        aig.num_inputs(),
        aig.num_outputs(),
        and_nodes.len()
    ));
    for &input in aig.inputs() {
        out.push_str(&format!("{}\n", 2 * var_of_node[input]));
    }
    for output in aig.outputs() {
        out.push_str(&format!("{}\n", lit_of(output.lit)));
    }
    for &id in &and_nodes {
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            out.push_str(&format!(
                "{} {} {}\n",
                2 * var_of_node[id],
                lit_of(*fanin0),
                lit_of(*fanin1)
            ));
        }
    }
    out
}

/// Writes an AIG to a file in ASCII AIGER format.
///
/// # Errors
///
/// Returns [`AigerError::Io`] on I/O failure.
pub fn write_aiger(aig: &Aig, path: impl AsRef<Path>) -> Result<(), AigerError> {
    fs::write(path, write_aiger_string(aig))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let y = aig.and(x, c);
        aig.add_output("po0", y);
        aig.add_output("po1", !x);
        aig
    }

    #[test]
    fn ascii_round_trip_preserves_function() {
        let original = sample_aig();
        let text = write_aiger_string(&original);
        let parsed = read_aiger_str(&text).unwrap();
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(parsed.evaluate(&assignment), original.evaluate(&assignment));
        }
    }

    #[test]
    fn parses_reference_ascii_example() {
        // Half adder from the AIGER specification.
        let text = "aag 7 2 0 2 3\n2\n4\n6\n12\n6 13 15\n12 2 4\n14 3 5\n";
        let aig = read_aiger_str(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
        // Output 0 is the sum (xor), output 1 is the carry (and).
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = aig.evaluate(&[a, b]);
            assert_eq!(values[0], a ^ b, "sum for {a} {b}");
            assert_eq!(values[1], a && b, "carry for {a} {b}");
        }
    }

    #[test]
    fn binary_round_trip_via_reference_bytes() {
        // The same half adder in binary format: header + delta-coded ANDs.
        // and gates: lhs 8: rhs 2,4 -> deltas 6,? ... easier: encode with our
        // own writer is ASCII-only, so craft the binary content manually.
        // Variables: inputs 1,2; ands 3,4,5.
        //   6 = 2 & 4        (lhs 6, deltas 4, 2)... lhs must be 2*(i+l+idx+1)
        // idx0: lhs=6 rhs0=4 rhs1=2 -> deltas 2,2
        // idx1: lhs=8 rhs0=5 rhs1=3 -> deltas 3,2
        // idx2: lhs=10 rhs0=9 rhs1=7 -> deltas 1,2
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"aig 5 2 0 2 3\n");
        bytes.extend_from_slice(b"10\n6\n"); // outputs: po0=10 (xor), po1=6 (carry-ish)
        for delta in [2u8, 2, 3, 2, 1, 2] {
            bytes.push(delta);
        }
        let aig = read_aiger_bytes(&bytes).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = aig.evaluate(&[a, b]);
            // out0 = !( (a&b) ... ) construction: node6 = a&b, node8 = !a&!b,
            // node10 = !node6 & !node8 = xor
            assert_eq!(values[0], a ^ b);
            assert_eq!(values[1], a && b);
        }
    }

    #[test]
    fn latches_become_inputs_and_outputs() {
        let text = "aag 3 1 1 1 1\n2\n4 6\n6\n6 2 4\n";
        let aig = read_aiger_str(text).unwrap();
        // One real PI plus one latch-output PI; one PO plus one latch-next PO.
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_aiger_str("garbage\n").is_err());
        assert!(read_aiger_str("aag 1 1 0 0\n").is_err());
        assert!(read_aiger_str("aag 5 1 0 0 1\n2\n").is_err());
        assert!(read_aiger_str("xyz 0 0 0 0 0\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("netlist_aiger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.aag");
        let original = sample_aig();
        write_aiger(&original, &path).unwrap();
        let parsed = read_aiger(&path).unwrap();
        assert_eq!(parsed.num_ands(), original.num_ands());
        std::fs::remove_file(&path).ok();
    }
}
