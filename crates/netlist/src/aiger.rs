//! AIGER readers and writers (ASCII `aag` and binary `aig` formats).
//!
//! Sequential elements (latches) are read and written first-class, AIGER 1.9
//! style: a latch line is `Q next [init]`, where the optional reset value is
//! `0` (the default), `1`, or the latch's own literal for an uninitialised
//! (`X`) latch.  Inside the [`Aig`] the latch keeps the *combinational
//! abstraction* the sweeping engines rely on — its current state is an extra
//! primary input, its next-state function an extra primary output — plus a
//! [`crate::Latch`] record tying the two together with the reset value, so
//! sequential algorithms (ternary initialisation, k-step unrolling) see the
//! full transition system.
//!
//! Writers renumber canonically — real inputs first, then latch states,
//! then AND gates in topological order — which is exactly the numbering the
//! binary format mandates, and makes `write ∘ read` the identity on written
//! files for the ASCII format too.

use crate::{Aig, AigNode, LatchInit, Lit};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced while reading or writing AIGER files.
#[derive(Debug)]
pub enum AigerError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not follow the AIGER format.
    Format(String),
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::Io(e) => write!(f, "aiger i/o error: {e}"),
            AigerError::Format(msg) => write!(f, "invalid aiger file: {msg}"),
        }
    }
}

impl Error for AigerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AigerError::Io(e) => Some(e),
            AigerError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for AigerError {
    fn from(e: std::io::Error) -> Self {
        AigerError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> AigerError {
    AigerError::Format(msg.into())
}

/// Reads an AIGER file (ASCII or binary, detected from the header).
///
/// # Errors
///
/// Returns [`AigerError`] on I/O failure or malformed content.
pub fn read_aiger(path: impl AsRef<Path>) -> Result<Aig, AigerError> {
    let bytes = fs::read(path)?;
    read_aiger_bytes(&bytes)
}

/// Parses an ASCII AIGER description from a string.
///
/// # Errors
///
/// Returns [`AigerError::Format`] on malformed content.
pub fn read_aiger_str(text: &str) -> Result<Aig, AigerError> {
    read_aiger_bytes(text.as_bytes())
}

/// Parses AIGER content from raw bytes (ASCII `aag` or binary `aig`).
///
/// # Errors
///
/// Returns [`AigerError::Format`] on malformed content.
pub fn read_aiger_bytes(bytes: &[u8]) -> Result<Aig, AigerError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| format_err("missing header line"))?;
    let header =
        std::str::from_utf8(&bytes[..header_end]).map_err(|_| format_err("header is not utf-8"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 {
        return Err(format_err("header must be '<fmt> M I L O A'"));
    }
    let parse = |s: &str| -> Result<usize, AigerError> {
        s.parse::<usize>()
            .map_err(|_| format_err(format!("invalid number '{s}' in header")))
    };
    let m = parse(fields[1])?;
    let i = parse(fields[2])?;
    let l = parse(fields[3])?;
    let o = parse(fields[4])?;
    let a = parse(fields[5])?;
    // The ASCII format allows M to exceed I+L+A (unused variable indices);
    // the binary format requires equality.
    if m < i + l + a || (fields[0] == "aig" && m != i + l + a) {
        return Err(format_err(format!(
            "inconsistent header: M={m} but I+L+A={}",
            i + l + a
        )));
    }
    match fields[0] {
        "aag" => {
            let body = std::str::from_utf8(&bytes[header_end + 1..])
                .map_err(|_| format_err("ascii body is not utf-8"))?;
            read_ascii(body, m, i, l, o, a)
        }
        "aig" => read_binary(&bytes[header_end + 1..], m, i, l, o, a),
        other => Err(format_err(format!("unknown format tag '{other}'"))),
    }
}

/// Maps an AIGER literal to a [`Lit`] using `var_map` (AIGER variable index
/// to node id).
fn map_lit(aiger_lit: usize, var_map: &[Option<Lit>]) -> Result<Lit, AigerError> {
    let var = aiger_lit / 2;
    let base = var_map.get(var).copied().flatten().ok_or_else(|| {
        format_err(format!(
            "literal {aiger_lit} references undefined var {var}"
        ))
    })?;
    Ok(base.complement_if(aiger_lit % 2 == 1))
}

/// Parses the optional reset field of a latch line.  `q` is the latch's own
/// (even) literal: AIGER 1.9 spells an uninitialised latch by using it as
/// the reset value.
fn parse_latch_init(field: Option<&str>, q: usize) -> Result<LatchInit, AigerError> {
    match field {
        None => Ok(LatchInit::Zero),
        Some("0") => Ok(LatchInit::Zero),
        Some("1") => Ok(LatchInit::One),
        Some(text) => {
            let value: usize = text
                .parse()
                .map_err(|_| format_err(format!("invalid latch reset value '{text}'")))?;
            if value == q {
                Ok(LatchInit::X)
            } else {
                Err(format_err(format!(
                    "latch reset must be 0, 1 or the latch literal {q}, got {value}"
                )))
            }
        }
    }
}

fn finish(
    mut aig: Aig,
    var_map: &[Option<Lit>],
    latches: &[(usize, LatchInit)],
    output_lits: &[usize],
) -> Result<Aig, AigerError> {
    for (idx, &lit) in output_lits.iter().enumerate() {
        let lit = map_lit(lit, var_map)?;
        aig.add_output(format!("po{idx}"), lit);
    }
    // Latch state inputs were created right after the real inputs; the
    // next-state outputs go right after the real outputs.
    let input_base = aig.num_inputs() - latches.len();
    for (idx, &(next, init)) in latches.iter().enumerate() {
        let lit = map_lit(next, var_map)?;
        let next_output = aig.num_outputs();
        aig.add_output(format!("latch_next{idx}"), lit);
        aig.define_latch(input_base + idx, next_output, init);
    }
    Ok(aig)
}

fn read_ascii(
    body: &str,
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
) -> Result<Aig, AigerError> {
    let mut lines = body.lines();
    let mut next_line = |what: &str| -> Result<&str, AigerError> {
        lines
            .next()
            .ok_or_else(|| format_err(format!("unexpected end of file while reading {what}")))
    };
    let mut aig = Aig::new();
    let mut var_map: Vec<Option<Lit>> = vec![None; m + 1];
    var_map[0] = Some(Lit::FALSE);

    // Inputs.
    for idx in 0..i {
        let line = next_line("inputs")?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err(format!("invalid input literal '{line}'")))?;
        if lit % 2 != 0 {
            return Err(format_err("input literal must be even"));
        }
        let input = aig.add_input(format!("pi{idx}"));
        var_map[lit / 2] = Some(input);
    }
    // Latches: the state side becomes an extra PI; the reset field is kept.
    let mut latches = Vec::with_capacity(l);
    for idx in 0..l {
        let line = next_line("latches")?;
        let mut parts = line.split_whitespace();
        let q: usize = parts
            .next()
            .ok_or_else(|| format_err("latch line missing literal"))?
            .parse()
            .map_err(|_| format_err("invalid latch literal"))?;
        if q % 2 != 0 {
            return Err(format_err("latch literal must be even"));
        }
        let next: usize = parts
            .next()
            .ok_or_else(|| format_err("latch line missing next-state literal"))?
            .parse()
            .map_err(|_| format_err("invalid latch next-state literal"))?;
        let init = parse_latch_init(parts.next(), q)?;
        let latch = aig.add_input(format!("latch{idx}"));
        var_map[q / 2] = Some(latch);
        latches.push((next, init));
    }
    // Outputs.
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = next_line("outputs")?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err(format!("invalid output literal '{line}'")))?;
        output_lits.push(lit);
    }
    // AND gates.  The ASCII format allows definitions in any order, so gather
    // them first and insert in passes until every fanin is defined.
    let mut pending: Vec<(usize, usize, usize)> = Vec::with_capacity(a);
    for _ in 0..a {
        let line = next_line("and gates")?;
        let mut parts = line.split_whitespace();
        let mut next_num = |what: &str| -> Result<usize, AigerError> {
            parts
                .next()
                .ok_or_else(|| format_err(format!("and line missing {what}")))?
                .parse()
                .map_err(|_| format_err(format!("invalid {what}")))
        };
        let lhs = next_num("lhs")?;
        let rhs0 = next_num("rhs0")?;
        let rhs1 = next_num("rhs1")?;
        if lhs % 2 != 0 {
            return Err(format_err("and gate lhs must be even"));
        }
        pending.push((lhs, rhs0, rhs1));
    }
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&(lhs, rhs0, rhs1)| {
            let ready = var_map[rhs0 / 2].is_some() && var_map[rhs1 / 2].is_some();
            if ready {
                let f0 = map_lit(rhs0, &var_map).expect("fanin checked defined");
                let f1 = map_lit(rhs1, &var_map).expect("fanin checked defined");
                // Constant folding or structural hashing may return any
                // literal (possibly complemented); the map stores it as-is.
                let lit = aig.and(f0, f1);
                var_map[lhs / 2] = Some(lit);
            }
            !ready
        });
        if pending.len() == before {
            return Err(format_err(
                "cyclic or dangling and-gate definitions in aag body",
            ));
        }
    }
    finish(aig, &var_map, &latches, &output_lits)
}

fn read_binary(
    body: &[u8],
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
) -> Result<Aig, AigerError> {
    let mut aig = Aig::new();
    let mut var_map: Vec<Option<Lit>> = vec![None; m + 1];
    var_map[0] = Some(Lit::FALSE);
    // In the binary format inputs are implicitly variables 1..=i.
    for idx in 0..i {
        let input = aig.add_input(format!("pi{idx}"));
        var_map[idx + 1] = Some(input);
    }
    let mut cursor = 0usize;
    let read_line = |cursor: &mut usize| -> Result<String, AigerError> {
        let start = *cursor;
        while *cursor < body.len() && body[*cursor] != b'\n' {
            *cursor += 1;
        }
        let line = std::str::from_utf8(&body[start..*cursor])
            .map_err(|_| format_err("non-utf8 text section"))?
            .to_string();
        *cursor += 1; // skip newline
        Ok(line)
    };
    // Latches: "<next> [init]" per line; latch states are variables
    // i+1..=i+l, which is also how an uninitialised reset value is spelled.
    let mut latches = Vec::with_capacity(l);
    for idx in 0..l {
        let line = read_line(&mut cursor)?;
        let mut parts = line.split_whitespace();
        let next: usize = parts
            .next()
            .ok_or_else(|| format_err("latch line missing next-state literal"))?
            .parse()
            .map_err(|_| format_err("invalid latch next-state literal"))?;
        let init = parse_latch_init(parts.next(), 2 * (i + idx + 1))?;
        let latch = aig.add_input(format!("latch{idx}"));
        var_map[i + idx + 1] = Some(latch);
        latches.push((next, init));
    }
    // Outputs.
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = read_line(&mut cursor)?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| format_err("invalid output literal"))?;
        output_lits.push(lit);
    }
    // AND gates, delta-encoded.
    let read_delta = |cursor: &mut usize| -> Result<usize, AigerError> {
        let mut value = 0usize;
        let mut shift = 0u32;
        loop {
            if *cursor >= body.len() {
                return Err(format_err("unexpected end of binary and-gate section"));
            }
            let byte = body[*cursor];
            *cursor += 1;
            value |= ((byte & 0x7f) as usize) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    for idx in 0..a {
        let lhs = 2 * (i + l + idx + 1);
        let delta0 = read_delta(&mut cursor)?;
        let delta1 = read_delta(&mut cursor)?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| format_err("invalid delta0"))?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| format_err("invalid delta1"))?;
        let f0 = map_lit(rhs0, &var_map)?;
        let f1 = map_lit(rhs1, &var_map)?;
        let lit = aig.and(f0, f1);
        var_map[lhs / 2] = Some(lit);
    }
    finish(aig, &var_map, &latches, &output_lits)
}

/// The canonical AIGER numbering shared by both writers: real inputs (in
/// input order), then latch state inputs (in latch order), then AND nodes in
/// topological (index) order — exactly what the binary format mandates.
struct WriterPlan {
    /// AIGER variable index of every node.
    var_of_node: Vec<usize>,
    /// AND node ids in emission order.
    and_nodes: Vec<usize>,
    /// Output indices that are *real* primary outputs (not latch-next).
    real_outputs: Vec<usize>,
    /// Number of real (non-latch) inputs.
    num_real_inputs: usize,
}

impl WriterPlan {
    fn new(aig: &Aig) -> Self {
        let mut is_latch_input = vec![false; aig.num_inputs()];
        let mut is_latch_output = vec![false; aig.num_outputs()];
        for latch in aig.latches() {
            is_latch_input[latch.state_input] = true;
            is_latch_output[latch.next_output] = true;
        }
        let mut var_of_node: Vec<usize> = vec![0; aig.num_nodes()];
        let mut next_var = 1usize;
        for (position, &id) in aig.inputs().iter().enumerate() {
            if !is_latch_input[position] {
                var_of_node[id] = next_var;
                next_var += 1;
            }
        }
        for latch in aig.latches() {
            var_of_node[aig.inputs()[latch.state_input]] = next_var;
            next_var += 1;
        }
        let mut and_nodes = Vec::new();
        for id in aig.node_ids() {
            if aig.node(id).is_and() {
                var_of_node[id] = next_var;
                next_var += 1;
                and_nodes.push(id);
            }
        }
        let real_outputs = (0..aig.num_outputs())
            .filter(|&idx| !is_latch_output[idx])
            .collect();
        WriterPlan {
            var_of_node,
            and_nodes,
            real_outputs,
            num_real_inputs: aig.num_inputs() - aig.num_latches(),
        }
    }

    fn lit_of(&self, lit: Lit) -> usize {
        2 * self.var_of_node[lit.node()] + lit.is_complemented() as usize
    }

    /// The `M I L O A` header fields.
    fn header(&self, aig: &Aig) -> (usize, usize, usize, usize, usize) {
        (
            self.num_real_inputs + aig.num_latches() + self.and_nodes.len(),
            self.num_real_inputs,
            aig.num_latches(),
            self.real_outputs.len(),
            self.and_nodes.len(),
        )
    }

    /// The latch line body `next [init]` (the reset field is omitted for the
    /// default 0, `1` for one, and the latch's own literal for `X`).
    fn latch_line(&self, aig: &Aig, index: usize) -> String {
        let latch = aig.latches()[index];
        let next = self.lit_of(aig.outputs()[latch.next_output].lit);
        let q = 2 * self.var_of_node[aig.inputs()[latch.state_input]];
        match latch.init {
            LatchInit::Zero => format!("{next}"),
            LatchInit::One => format!("{next} 1"),
            LatchInit::X => format!("{next} {q}"),
        }
    }
}

/// Serialises an AIG to the ASCII AIGER format (latches written AIGER 1.9
/// style, with reset values).
pub fn write_aiger_string(aig: &Aig) -> String {
    let plan = WriterPlan::new(aig);
    let (m, i, l, o, a) = plan.header(aig);
    let mut out = String::new();
    out.push_str(&format!("aag {m} {i} {l} {o} {a}\n"));
    let mut is_latch_input = vec![false; aig.num_inputs()];
    for latch in aig.latches() {
        is_latch_input[latch.state_input] = true;
    }
    for (position, &id) in aig.inputs().iter().enumerate() {
        if !is_latch_input[position] {
            out.push_str(&format!("{}\n", 2 * plan.var_of_node[id]));
        }
    }
    for index in 0..aig.num_latches() {
        let latch = aig.latches()[index];
        let q = 2 * plan.var_of_node[aig.inputs()[latch.state_input]];
        out.push_str(&format!("{q} {}\n", plan.latch_line(aig, index)));
    }
    for &idx in &plan.real_outputs {
        out.push_str(&format!("{}\n", plan.lit_of(aig.outputs()[idx].lit)));
    }
    for &id in &plan.and_nodes {
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            out.push_str(&format!(
                "{} {} {}\n",
                2 * plan.var_of_node[id],
                plan.lit_of(*fanin0),
                plan.lit_of(*fanin1)
            ));
        }
    }
    out
}

/// Serialises an AIG to the binary AIGER format (`aig` header, implicit
/// input/latch variables, delta-coded AND gates).
pub fn write_aiger_binary_bytes(aig: &Aig) -> Vec<u8> {
    let plan = WriterPlan::new(aig);
    let (m, i, l, o, a) = plan.header(aig);
    let mut out = Vec::new();
    out.extend_from_slice(format!("aig {m} {i} {l} {o} {a}\n").as_bytes());
    for index in 0..aig.num_latches() {
        out.extend_from_slice(format!("{}\n", plan.latch_line(aig, index)).as_bytes());
    }
    for &idx in &plan.real_outputs {
        out.extend_from_slice(format!("{}\n", plan.lit_of(aig.outputs()[idx].lit)).as_bytes());
    }
    let mut write_delta = |mut value: usize| {
        while value >= 0x80 {
            out.push((value & 0x7f) as u8 | 0x80);
            value >>= 7;
        }
        out.push(value as u8);
    };
    for &id in &plan.and_nodes {
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            let lhs = 2 * plan.var_of_node[id];
            let (e0, e1) = (plan.lit_of(*fanin0), plan.lit_of(*fanin1));
            // The binary format wants rhs0 >= rhs1; both are smaller than
            // lhs because fanin variables are assigned before the gate's.
            let (rhs0, rhs1) = if e0 >= e1 { (e0, e1) } else { (e1, e0) };
            write_delta(lhs - rhs0);
            write_delta(rhs0 - rhs1);
        }
    }
    out
}

/// Writes an AIG to a file in ASCII AIGER format.
///
/// # Errors
///
/// Returns [`AigerError::Io`] on I/O failure.
pub fn write_aiger(aig: &Aig, path: impl AsRef<Path>) -> Result<(), AigerError> {
    fs::write(path, write_aiger_string(aig))?;
    Ok(())
}

/// Writes an AIG to a file in binary AIGER format.
///
/// # Errors
///
/// Returns [`AigerError::Io`] on I/O failure.
pub fn write_aiger_binary(aig: &Aig, path: impl AsRef<Path>) -> Result<(), AigerError> {
    fs::write(path, write_aiger_binary_bytes(aig))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let y = aig.and(x, c);
        aig.add_output("po0", y);
        aig.add_output("po1", !x);
        aig
    }

    #[test]
    fn ascii_round_trip_preserves_function() {
        let original = sample_aig();
        let text = write_aiger_string(&original);
        let parsed = read_aiger_str(&text).unwrap();
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(parsed.evaluate(&assignment), original.evaluate(&assignment));
        }
    }

    #[test]
    fn parses_reference_ascii_example() {
        // Half adder from the AIGER specification.
        let text = "aag 7 2 0 2 3\n2\n4\n6\n12\n6 13 15\n12 2 4\n14 3 5\n";
        let aig = read_aiger_str(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
        // Output 0 is the sum (xor), output 1 is the carry (and).
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = aig.evaluate(&[a, b]);
            assert_eq!(values[0], a ^ b, "sum for {a} {b}");
            assert_eq!(values[1], a && b, "carry for {a} {b}");
        }
    }

    #[test]
    fn binary_round_trip_via_reference_bytes() {
        // The same half adder in binary format: header + delta-coded ANDs.
        // and gates: lhs 8: rhs 2,4 -> deltas 6,? ... easier: encode with our
        // own writer is ASCII-only, so craft the binary content manually.
        // Variables: inputs 1,2; ands 3,4,5.
        //   6 = 2 & 4        (lhs 6, deltas 4, 2)... lhs must be 2*(i+l+idx+1)
        // idx0: lhs=6 rhs0=4 rhs1=2 -> deltas 2,2
        // idx1: lhs=8 rhs0=5 rhs1=3 -> deltas 3,2
        // idx2: lhs=10 rhs0=9 rhs1=7 -> deltas 1,2
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"aig 5 2 0 2 3\n");
        bytes.extend_from_slice(b"10\n6\n"); // outputs: po0=10 (xor), po1=6 (carry-ish)
        for delta in [2u8, 2, 3, 2, 1, 2] {
            bytes.push(delta);
        }
        let aig = read_aiger_bytes(&bytes).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = aig.evaluate(&[a, b]);
            // out0 = !( (a&b) ... ) construction: node6 = a&b, node8 = !a&!b,
            // node10 = !node6 & !node8 = xor
            assert_eq!(values[0], a ^ b);
            assert_eq!(values[1], a && b);
        }
    }

    #[test]
    fn latches_become_inputs_and_outputs() {
        let text = "aag 3 1 1 1 1\n2\n4 6\n6\n6 2 4\n";
        let aig = read_aiger_str(text).unwrap();
        // One real PI plus one latch-output PI; one PO plus one latch-next PO.
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 2);
        // ...and the latch itself is registered first-class.
        assert_eq!(aig.num_latches(), 1);
        let latch = aig.latches()[0];
        assert_eq!(latch.state_input, 1);
        assert_eq!(latch.next_output, 1);
        assert_eq!(latch.init, crate::LatchInit::Zero);
    }

    /// A toggle-with-enable register plus an uninitialised shadow latch.
    fn sequential_aig() -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        let q = aig.add_latch("q", crate::LatchInit::One);
        let s = aig.add_latch("s", crate::LatchInit::X);
        let next = aig.mux(en, !q, q);
        aig.set_latch_next(0, next);
        aig.set_latch_next(1, !s);
        let o = aig.and(q, s);
        aig.add_output("o", o);
        aig
    }

    #[test]
    fn ascii_latch_round_trip_is_identity() {
        let original = sequential_aig();
        let text = write_aiger_string(&original);
        let parsed = read_aiger_str(&text).unwrap();
        assert_eq!(parsed.num_latches(), 2);
        assert_eq!(parsed.latches()[0].init, crate::LatchInit::One);
        assert_eq!(parsed.latches()[1].init, crate::LatchInit::X);
        // write ∘ read is the identity on written files.
        assert_eq!(write_aiger_string(&parsed), text);
    }

    #[test]
    fn binary_latch_round_trip_preserves_the_transition_system() {
        let original = sequential_aig();
        let bytes = write_aiger_binary_bytes(&original);
        let parsed = read_aiger_bytes(&bytes).unwrap();
        assert_eq!(parsed.num_latches(), 2);
        assert_eq!(parsed.latches()[0].init, crate::LatchInit::One);
        assert_eq!(parsed.latches()[1].init, crate::LatchInit::X);
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        // Same transition system.  The reader orders real POs before
        // latch-next outputs, so compare by role instead of raw position.
        let eval_roles = |aig: &Aig, assignment: &[bool]| {
            let values = aig.evaluate(assignment);
            let pos: Vec<bool> = (0..aig.num_outputs())
                .filter(|&idx| !aig.is_latch_next_output(idx))
                .map(|idx| values[idx])
                .collect();
            let nexts: Vec<bool> = aig
                .latches()
                .iter()
                .map(|l| values[l.next_output])
                .collect();
            (pos, nexts)
        };
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(
                eval_roles(&parsed, &assignment),
                eval_roles(&original, &assignment)
            );
        }
        // And the binary writer is a fixpoint of its own read-back.
        assert_eq!(write_aiger_binary_bytes(&parsed), bytes);
    }

    #[test]
    fn binary_writer_agrees_with_ascii_writer() {
        let original = sequential_aig();
        let via_binary = read_aiger_bytes(&write_aiger_binary_bytes(&original)).unwrap();
        let via_ascii = read_aiger_str(&write_aiger_string(&original)).unwrap();
        assert_eq!(
            write_aiger_string(&via_binary),
            write_aiger_string(&via_ascii)
        );
    }

    #[test]
    fn rejects_bad_latch_resets() {
        // Reset literal that is neither 0, 1 nor the latch's own literal.
        assert!(read_aiger_str("aag 3 1 1 1 1\n2\n4 6 2\n6\n6 2 4\n").is_err());
        // Odd latch literal.
        assert!(read_aiger_str("aag 3 1 1 1 1\n2\n5 6\n6\n6 2 4\n").is_err());
        // Garbage reset field.
        assert!(read_aiger_str("aag 3 1 1 1 1\n2\n4 6 zz\n6\n6 2 4\n").is_err());
    }

    #[test]
    fn uninitialised_reset_uses_the_latch_literal() {
        // "4 6 4": latch var 2 with reset = its own literal → X.
        let aig = read_aiger_str("aag 3 1 1 1 1\n2\n4 6 4\n6\n6 2 4\n").unwrap();
        assert_eq!(aig.latches()[0].init, crate::LatchInit::X);
        // "4 6 1": constant-one reset.
        let aig = read_aiger_str("aag 3 1 1 1 1\n2\n4 6 1\n6\n6 2 4\n").unwrap();
        assert_eq!(aig.latches()[0].init, crate::LatchInit::One);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_aiger_str("garbage\n").is_err());
        assert!(read_aiger_str("aag 1 1 0 0\n").is_err());
        assert!(read_aiger_str("aag 5 1 0 0 1\n2\n").is_err());
        assert!(read_aiger_str("xyz 0 0 0 0 0\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("netlist_aiger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.aag");
        let original = sample_aig();
        write_aiger(&original, &path).unwrap();
        let parsed = read_aiger(&path).unwrap();
        assert_eq!(parsed.num_ands(), original.num_ands());
        std::fs::remove_file(&path).ok();
    }
}
