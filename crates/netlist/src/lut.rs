//! k-LUT networks: nodes carrying explicit truth tables.

use std::fmt;
use truthtable::TruthTable;

/// Index of a node inside a [`LutNetwork`].  Node 0 is the constant-false
/// node; inputs and LUTs follow in creation order, so index order is a valid
/// topological order (every LUT's fanins have smaller indices).
pub type LutNodeId = usize;

/// A node of a [`LutNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LutNode {
    /// The constant-false node (always node 0).
    Const0,
    /// A primary input with its position in the input list.
    Input {
        /// Position of this input in the input list.
        position: usize,
    },
    /// A lookup table over its fanins.  The truth table's variable `i`
    /// corresponds to `fanins[i]`.
    Lut {
        /// Fanin node ids, ordered to match the truth table variables.
        fanins: Vec<LutNodeId>,
        /// The LUT function.
        function: TruthTable,
    },
}

impl LutNode {
    /// `true` if the node is a LUT.
    pub fn is_lut(&self) -> bool {
        matches!(self, LutNode::Lut { .. })
    }

    /// `true` if the node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, LutNode::Input { .. })
    }

    /// Fanin ids (empty for inputs and the constant).
    pub fn fanins(&self) -> &[LutNodeId] {
        match self {
            LutNode::Lut { fanins, .. } => fanins,
            _ => &[],
        }
    }

    /// The LUT function, if the node is a LUT.
    pub fn function(&self) -> Option<&TruthTable> {
        match self {
            LutNode::Lut { function, .. } => Some(function),
            _ => None,
        }
    }
}

/// A primary output of a [`LutNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutOutput {
    /// Output name.
    pub name: String,
    /// Driving node.
    pub node: LutNodeId,
    /// Whether the output value is the complement of the node value.
    pub complemented: bool,
}

/// A k-LUT network: the representation the paper's STP simulator operates
/// on (Section III).
///
/// ```
/// use netlist::LutNetwork;
/// use truthtable::TruthTable;
///
/// let mut net = LutNetwork::new();
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let nand = TruthTable::from_binary_str(2, "0111")?;
/// let g = net.add_lut(vec![a, b], nand);
/// net.add_output("y", g, false);
/// assert_eq!(net.evaluate(&[true, true]), vec![false]);
/// # Ok::<(), truthtable::ParseTruthTableError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LutNetwork {
    nodes: Vec<LutNode>,
    inputs: Vec<LutNodeId>,
    input_names: Vec<String>,
    outputs: Vec<LutOutput>,
}

impl LutNetwork {
    /// Creates an empty network containing only the constant node.
    pub fn new() -> Self {
        LutNetwork {
            nodes: vec![LutNode::Const0],
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a primary input and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> LutNodeId {
        let id = self.nodes.len();
        self.nodes.push(LutNode::Input {
            position: self.inputs.len(),
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Adds a LUT node.
    ///
    /// # Panics
    ///
    /// Panics if the number of fanins differs from the truth table's variable
    /// count or if any fanin id does not precede the new node.
    pub fn add_lut(&mut self, fanins: Vec<LutNodeId>, function: TruthTable) -> LutNodeId {
        assert_eq!(
            fanins.len(),
            function.num_vars(),
            "LUT fanin count must equal the truth table variable count"
        );
        let id = self.nodes.len();
        assert!(
            fanins.iter().all(|&f| f < id),
            "LUT fanins must precede the node (topological construction)"
        );
        self.nodes.push(LutNode::Lut { fanins, function });
        id
    }

    /// Registers a primary output.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn add_output(&mut self, name: impl Into<String>, node: LutNodeId, complemented: bool) {
        assert!(node < self.nodes.len(), "output node out of range");
        self.outputs.push(LutOutput {
            name: name.into(),
            node,
            complemented,
        });
    }

    /// Number of nodes, including the constant node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.outputs.len()
    }

    /// Number of LUT nodes.
    pub fn num_luts(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_lut()).count()
    }

    /// The largest LUT fanin count in the network (the `k` of "k-LUT").
    pub fn max_fanin(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.fanins().len())
            .max()
            .unwrap_or(0)
    }

    /// Node accessor.
    pub fn node(&self, id: LutNodeId) -> &LutNode {
        &self.nodes[id]
    }

    /// Primary input node ids in declaration order.
    pub fn inputs(&self) -> &[LutNodeId] {
        &self.inputs
    }

    /// Name of the input at `position`.
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[LutOutput] {
        &self.outputs
    }

    /// Iterator over node ids in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = LutNodeId> {
        0..self.nodes.len()
    }

    /// Iterator over LUT node ids in topological order.
    pub fn lut_ids(&self) -> impl Iterator<Item = LutNodeId> + '_ {
        (0..self.nodes.len()).filter(move |&id| self.nodes[id].is_lut())
    }

    /// Logic level of every node (inputs and constant are level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for id in 0..self.nodes.len() {
            if let LutNode::Lut { fanins, .. } = &self.nodes[id] {
                levels[id] = 1 + fanins.iter().map(|&f| levels[f]).max().unwrap_or(0);
            }
        }
        levels
    }

    /// Depth of the network.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.node])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count of every node.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &f in node.fanins() {
                counts[f] += 1;
            }
        }
        for output in &self.outputs {
            counts[output.node] += 1;
        }
        counts
    }

    /// Summary statistics.
    pub fn stats(&self) -> crate::NetworkStats {
        crate::NetworkStats {
            inputs: self.num_pis(),
            outputs: self.num_pos(),
            gates: self.num_luts(),
            depth: self.depth(),
            latches: 0,
        }
    }

    /// Evaluates the network on a single assignment (one Boolean per primary
    /// input, declaration order), returning one Boolean per output.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the number of inputs.
    pub fn evaluate(&self, assignment: &[bool]) -> Vec<bool> {
        let values = self.evaluate_nodes(assignment);
        self.outputs
            .iter()
            .map(|o| values[o.node] ^ o.complemented)
            .collect()
    }

    /// Evaluates the network on a single assignment and returns the value of
    /// every node.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the number of inputs.
    pub fn evaluate_nodes(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment length must equal the number of inputs"
        );
        let mut values = vec![false; self.nodes.len()];
        for id in 0..self.nodes.len() {
            values[id] = match &self.nodes[id] {
                LutNode::Const0 => false,
                LutNode::Input { position } => assignment[*position],
                LutNode::Lut { fanins, function } => {
                    let args: Vec<bool> = fanins.iter().map(|&f| values[f]).collect();
                    function.evaluate(&args)
                }
            };
        }
        values
    }
}

impl fmt::Display for LutNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LutNetwork({} PIs, {} POs, {} LUTs, depth {})",
            self.num_pis(),
            self.num_pos(),
            self.num_luts(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the example network of Fig. 1(a): five PIs, six NAND LUTs.
    pub(crate) fn figure1_network() -> (LutNetwork, Vec<LutNodeId>) {
        let nand = TruthTable::from_binary_str(2, "0111").unwrap();
        let mut net = LutNetwork::new();
        let pis: Vec<LutNodeId> = (1..=5).map(|i| net.add_input(format!("{i}"))).collect();
        // Paper node numbering: PIs are 1..5, internal nodes are 6..11.
        let n6 = net.add_lut(vec![pis[0], pis[2]], nand.clone()); // 6 = NAND(1, 3)
        let n7 = net.add_lut(vec![pis[1], pis[2]], nand.clone()); // 7 = NAND(2, 3)
        let n8 = net.add_lut(vec![pis[2], pis[3]], nand.clone()); // 8 = NAND(3, 4)
        let n9 = net.add_lut(vec![pis[3], pis[4]], nand.clone()); // 9 = NAND(4, 5)
        let n10 = net.add_lut(vec![n6, n7], nand.clone()); // 10 = NAND(6, 7)
        let n11 = net.add_lut(vec![n8, n9], nand); // 11 = NAND(8, 9)
        net.add_output("po1", n10, false);
        net.add_output("po2", n11, false);
        (net, vec![n6, n7, n8, n9, n10, n11])
    }

    #[test]
    fn figure1_structure() {
        let (net, nodes) = figure1_network();
        assert_eq!(net.num_pis(), 5);
        assert_eq!(net.num_pos(), 2);
        assert_eq!(net.num_luts(), 6);
        assert_eq!(net.depth(), 2);
        assert_eq!(net.max_fanin(), 2);
        let counts = net.fanout_counts();
        assert_eq!(counts[nodes[0]], 1); // node 6 feeds node 10
    }

    #[test]
    fn evaluate_nand_tree() {
        let (net, _) = figure1_network();
        // First simulation pattern of the paper: inputs (1..5) = 0,1,1,0,0.
        let outs = net.evaluate(&[false, true, true, false, false]);
        // po1 = NAND(NAND(1,3), NAND(2,3)) = NAND(1, 0) = 1
        // po2 = NAND(NAND(3,4), NAND(4,5)) = NAND(1, 1) = 0
        assert_eq!(outs, vec![true, false]);
    }

    #[test]
    fn complemented_outputs() {
        let mut net = LutNetwork::new();
        let a = net.add_input("a");
        net.add_output("y", a, true);
        assert_eq!(net.evaluate(&[true]), vec![false]);
        assert_eq!(net.evaluate(&[false]), vec![true]);
    }

    #[test]
    #[should_panic(expected = "fanin count must equal")]
    fn fanin_arity_mismatch() {
        let mut net = LutNetwork::new();
        let a = net.add_input("a");
        let nand = TruthTable::from_binary_str(2, "0111").unwrap();
        net.add_lut(vec![a], nand);
    }

    #[test]
    fn stats_and_display() {
        let (net, _) = figure1_network();
        let stats = net.stats();
        assert_eq!(stats.gates, 6);
        assert_eq!(stats.depth, 2);
        assert!(net.to_string().contains("6 LUTs"));
    }
}
