//! BLIF (Berkeley Logic Interchange Format) reader and writer for k-LUT
//! networks.
//!
//! The paper's simulator operates on k-LUT networks; BLIF is the standard
//! interchange format for such networks (ABC's `write_blif`, mockturtle's
//! `blif_reader`), so the substrate supports it alongside AIGER.  Only the
//! combinational subset is implemented: `.model`, `.inputs`, `.outputs`,
//! `.names` with single-output covers, and `.end`.  Latches are rejected.

use crate::{LutNetwork, LutNode};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;
use truthtable::TruthTable;

/// Errors produced while reading or writing BLIF files.
#[derive(Debug)]
pub enum BlifError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not follow the supported BLIF subset.
    Format(String),
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::Io(e) => write!(f, "blif i/o error: {e}"),
            BlifError::Format(msg) => write!(f, "invalid blif file: {msg}"),
        }
    }
}

impl Error for BlifError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BlifError::Io(e) => Some(e),
            BlifError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for BlifError {
    fn from(e: std::io::Error) -> Self {
        BlifError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> BlifError {
    BlifError::Format(msg.into())
}

/// Serialises a k-LUT network to BLIF text.
///
/// Node names are synthesised as `n<id>`; primary inputs and outputs keep
/// their registered names.
pub fn write_blif_string(net: &LutNetwork, model_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {model_name}\n"));

    let node_name = |id: usize| -> String {
        match net.node(id) {
            LutNode::Input { position } => net.input_name(*position).to_string(),
            _ => format!("n{id}"),
        }
    };

    out.push_str(".inputs");
    for &input in net.inputs() {
        out.push_str(&format!(" {}", node_name(input)));
    }
    out.push('\n');

    out.push_str(".outputs");
    for output in net.outputs() {
        out.push_str(&format!(" {}", output.name));
    }
    out.push('\n');

    // The constant node, only when referenced.
    let const_used = net.node_ids().any(|id| net.node(id).fanins().contains(&0))
        || net.outputs().iter().any(|o| o.node == 0);
    if const_used {
        out.push_str(".names n0\n");
        // An empty cover is constant 0.
    }

    for id in net.lut_ids() {
        let node = net.node(id);
        let fanins = node.fanins();
        let function = node.function().expect("lut node has a function");
        out.push_str(".names");
        for &f in fanins {
            out.push_str(&format!(" {}", node_name(f)));
        }
        out.push_str(&format!(" {}\n", node_name(id)));
        for minterm in 0..function.num_bits() {
            if function.get_bit(minterm) {
                let row: String = (0..fanins.len())
                    .map(|j| if (minterm >> j) & 1 == 1 { '1' } else { '0' })
                    .collect();
                out.push_str(&format!("{row} 1\n"));
            }
        }
    }

    // Output drivers: a buffer or inverter per primary output.
    for output in net.outputs() {
        out.push_str(&format!(
            ".names {} {}\n",
            node_name(output.node),
            output.name
        ));
        if output.complemented {
            out.push_str("0 1\n");
        } else {
            out.push_str("1 1\n");
        }
    }
    out.push_str(".end\n");
    out
}

/// Writes a k-LUT network to a BLIF file.
///
/// # Errors
///
/// Returns [`BlifError::Io`] on I/O failure.
pub fn write_blif(
    net: &LutNetwork,
    model_name: &str,
    path: impl AsRef<Path>,
) -> Result<(), BlifError> {
    fs::write(path, write_blif_string(net, model_name))?;
    Ok(())
}

/// Parses BLIF text into a k-LUT network.
///
/// # Errors
///
/// Returns [`BlifError::Format`] when the text is not in the supported
/// combinational subset (unknown directives, latches, multi-output covers,
/// cyclic definitions).
pub fn read_blif_str(text: &str) -> Result<LutNetwork, BlifError> {
    // Join continuation lines and strip comments.
    let mut logical_lines: Vec<String> = Vec::new();
    let mut current = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if let Some(stripped) = line.strip_suffix('\\') {
            current.push_str(stripped);
            current.push(' ');
            continue;
        }
        current.push_str(line);
        if !current.trim().is_empty() {
            logical_lines.push(current.trim().to_string());
        }
        current = String::new();
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    struct Cover {
        fanins: Vec<String>,
        target: String,
        rows: Vec<(String, char)>,
    }
    let mut covers: Vec<Cover> = Vec::new();
    let mut i = 0usize;
    while i < logical_lines.len() {
        let line = logical_lines[i].clone();
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or("");
        match head {
            ".model" => {}
            ".inputs" => inputs.extend(tokens.map(|s| s.to_string())),
            ".outputs" => outputs.extend(tokens.map(|s| s.to_string())),
            ".names" => {
                let signals: Vec<String> = tokens.map(|s| s.to_string()).collect();
                if signals.is_empty() {
                    return Err(format_err(".names needs at least an output signal"));
                }
                let target = signals.last().expect("non-empty").clone();
                let fanins = signals[..signals.len() - 1].to_vec();
                let mut rows = Vec::new();
                while i + 1 < logical_lines.len() && !logical_lines[i + 1].starts_with('.') {
                    i += 1;
                    let row_line = &logical_lines[i];
                    let parts: Vec<&str> = row_line.split_whitespace().collect();
                    match (fanins.is_empty(), parts.len()) {
                        (true, 1) => rows.push((String::new(), parts[0].chars().next().unwrap())),
                        (false, 2) => {
                            rows.push((parts[0].to_string(), parts[1].chars().next().unwrap()))
                        }
                        _ => return Err(format_err(format!("malformed cover row '{row_line}'"))),
                    }
                }
                covers.push(Cover {
                    fanins,
                    target,
                    rows,
                });
            }
            ".end" => break,
            ".latch" => return Err(format_err("latches are not supported")),
            other => return Err(format_err(format!("unsupported directive '{other}'"))),
        }
        i += 1;
    }

    // Build the network: inputs first, then covers in dependency order.
    let mut net = LutNetwork::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for name in &inputs {
        let id = net.add_input(name.clone());
        by_name.insert(name.clone(), id);
    }

    let mut pending: Vec<Option<Cover>> = covers.into_iter().map(Some).collect();
    let mut remaining = pending.iter().filter(|c| c.is_some()).count();
    while remaining > 0 {
        let mut progressed = false;
        for slot in pending.iter_mut() {
            let ready = match slot {
                Some(cover) => cover.fanins.iter().all(|f| by_name.contains_key(f)),
                None => false,
            };
            if !ready {
                continue;
            }
            let cover = slot.take().expect("checked above");
            let fanin_ids: Vec<usize> = cover.fanins.iter().map(|f| by_name[f]).collect();
            let num_vars = fanin_ids.len();
            let mut table = TruthTable::zeros(num_vars);
            for (pattern, value) in &cover.rows {
                if *value != '1' {
                    return Err(format_err("only on-set ('1') cover rows are supported"));
                }
                // Expand '-' wildcards.
                let mut indices = vec![0usize];
                for (j, ch) in pattern.chars().enumerate() {
                    indices = match ch {
                        '0' => indices,
                        '1' => indices.iter().map(|&x| x | (1 << j)).collect(),
                        '-' => indices.iter().flat_map(|&x| [x, x | (1 << j)]).collect(),
                        _ => return Err(format_err(format!("invalid cover character '{ch}'"))),
                    };
                }
                if pattern.len() != num_vars {
                    return Err(format_err("cover row width does not match fanin count"));
                }
                for idx in indices {
                    table.set_bit(idx, true);
                }
            }
            let id = if num_vars == 0 {
                // A constant: model it as a zero-input LUT.
                net.add_lut(Vec::new(), table)
            } else {
                net.add_lut(fanin_ids, table)
            };
            by_name.insert(cover.target.clone(), id);
            remaining -= 1;
            progressed = true;
        }
        if !progressed {
            return Err(format_err(
                "cyclic or dangling .names definitions (undriven signal)",
            ));
        }
    }

    for name in &outputs {
        let id = *by_name
            .get(name)
            .ok_or_else(|| format_err(format!("output '{name}' is never driven")))?;
        net.add_output(name.clone(), id, false);
    }
    Ok(net)
}

/// Reads a BLIF file into a k-LUT network.
///
/// # Errors
///
/// Returns [`BlifError`] on I/O failure or malformed content.
pub fn read_blif(path: impl AsRef<Path>) -> Result<LutNetwork, BlifError> {
    let text = fs::read_to_string(path)?;
    read_blif_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lutmap;

    fn sample_network() -> LutNetwork {
        let mut aig = crate::Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g = aig.xor(a, b);
        let h = aig.mux(g, b, c);
        aig.add_output("y", h);
        aig.add_output("ny", !g);
        lutmap::map_to_luts(&aig, 4)
    }

    #[test]
    fn round_trip_preserves_function() {
        let net = sample_network();
        let text = write_blif_string(&net, "sample");
        let parsed = read_blif_str(&text).expect("own output parses");
        assert_eq!(parsed.num_pis(), net.num_pis());
        assert_eq!(parsed.num_pos(), net.num_pos());
        for bits in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (bits >> j) & 1 == 1).collect();
            assert_eq!(parsed.evaluate(&assignment), net.evaluate(&assignment));
        }
    }

    #[test]
    fn parses_hand_written_blif() {
        let text = "\
# a tiny example
.model tiny
.inputs a b sel
.outputs f
.names a b andab
11 1
.names sel a b f
1-1 1
01- 1
.end
";
        let net = read_blif_str(text).expect("valid blif");
        assert_eq!(net.num_pis(), 3);
        assert_eq!(net.num_pos(), 1);
        // f = sel ? b : a  (rows: sel=1,b=1 -> 1; sel=0,a=1 -> 1)
        for bits in 0..8usize {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let sel = bits & 4 == 4;
            let expected = if sel { b } else { a };
            assert_eq!(
                net.evaluate(&[a, b, sel]),
                vec![expected],
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn wildcards_expand() {
        let text = ".model w\n.inputs x y z\n.outputs o\n.names x y z o\n--1 1\n.end\n";
        let net = read_blif_str(text).expect("valid blif");
        for bits in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (bits >> j) & 1 == 1).collect();
            assert_eq!(net.evaluate(&assignment)[0], assignment[2]);
        }
    }

    #[test]
    fn rejects_unsupported_content() {
        assert!(read_blif_str(".model m\n.latch a b\n.end\n").is_err());
        assert!(read_blif_str(".model m\n.gate nand a b\n.end\n").is_err());
        assert!(read_blif_str(".model m\n.inputs a\n.outputs y\n.end\n").is_err());
        // Cyclic definition.
        let cyclic = ".model m\n.inputs a\n.outputs y\n.names y a y\n11 1\n.end\n";
        assert!(read_blif_str(cyclic).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("netlist_blif_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.blif");
        let net = sample_network();
        write_blif(&net, "sample", &path).unwrap();
        let parsed = read_blif(&path).unwrap();
        assert_eq!(parsed.num_pos(), net.num_pos());
        std::fs::remove_file(&path).ok();
    }
}
