//! # netlist — logic network substrate
//!
//! The data structures every other crate builds on:
//!
//! * [`Aig`] — an And-Inverter Graph with complemented edges, structural
//!   hashing, constant propagation at construction time, fanout counts,
//!   levels, transitive-fanin queries and node substitution (the operations
//!   SAT-sweeping needs).  Sequential designs carry a [`Latch`] table over
//!   the combinational view: each latch's state is an extra input, its
//!   next-state function an extra output, plus an initial value
//!   ([`LatchInit`]).
//! * [`Lit`] — an AIGER-style literal (`2 * node + complement`).
//! * [`LutNetwork`] — a k-LUT network whose nodes carry explicit truth
//!   tables; the target representation of the paper's STP simulator.
//! * [`aiger`] — ASCII and binary AIGER readers/writers.
//! * [`cuts`] — k-feasible cut enumeration with cut truth tables.
//! * [`fingerprint`] — canonical (topological-order-invariant) structural
//!   fingerprints, used by the sweep service to match resubmitted jobs to
//!   their checkpoints.
//! * [`lutmap`] — a depth-oriented LUT mapper turning an AIG into a
//!   [`LutNetwork`] (the "map the nodes … to k-LUTs" step of the paper).
//!
//! ```
//! use netlist::{Aig, lutmap};
//!
//! # fn main() {
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let g = aig.and(a, b);
//! let h = aig.or(g, c);
//! aig.add_output("y", h);
//! let lut = lutmap::map_to_luts(&aig, 4);
//! assert_eq!(lut.num_pis(), 3);
//! assert_eq!(lut.num_pos(), 1);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod aiger;
pub mod blif;
pub mod cuts;
pub mod fingerprint;
pub mod lut;
pub mod lutmap;
pub mod stats;

pub use aig::{Aig, AigNode, Latch, LatchInit, Lit, NodeId};
pub use aiger::{
    read_aiger, read_aiger_bytes, read_aiger_str, write_aiger, write_aiger_binary,
    write_aiger_binary_bytes, write_aiger_string, AigerError,
};
pub use blif::{read_blif, read_blif_str, write_blif, write_blif_string, BlifError};
pub use cuts::{Cut, CutSet};
pub use fingerprint::canonical_fingerprint;
pub use lut::{LutNetwork, LutNode, LutNodeId};
pub use stats::NetworkStats;
