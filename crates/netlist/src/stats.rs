//! Compact summary statistics for logic networks.

use std::fmt;

/// Size and depth statistics of a logic network, matching the "Statistics"
/// columns of Table II in the paper (PI/PO, Lev, Gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of internal gates (AND nodes for an AIG, LUTs for a k-LUT
    /// network).
    pub gates: usize,
    /// Logic depth (number of gate levels on the longest input-to-output
    /// path).
    pub depth: usize,
    /// Number of latches (zero for a purely combinational network).  The
    /// latch state inputs / next-state outputs are *included* in `inputs`
    /// and `outputs`, matching the combinational view of [`crate::Aig`].
    pub latches: usize,
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi={} po={} gates={} depth={}",
            self.inputs, self.outputs, self.gates, self.depth
        )?;
        if self.latches > 0 {
            write!(f, " latches={}", self.latches)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let s = NetworkStats {
            inputs: 3,
            outputs: 1,
            gates: 7,
            depth: 4,
            latches: 0,
        };
        assert_eq!(s.to_string(), "pi=3 po=1 gates=7 depth=4");
    }

    #[test]
    fn display_mentions_latches_only_when_present() {
        let s = NetworkStats {
            inputs: 3,
            outputs: 2,
            gates: 7,
            depth: 4,
            latches: 2,
        };
        assert_eq!(s.to_string(), "pi=3 po=2 gates=7 depth=4 latches=2");
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(NetworkStats::default().gates, 0);
    }
}
