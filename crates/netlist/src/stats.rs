//! Compact summary statistics for logic networks.

use std::fmt;

/// Size and depth statistics of a logic network, matching the "Statistics"
/// columns of Table II in the paper (PI/PO, Lev, Gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of internal gates (AND nodes for an AIG, LUTs for a k-LUT
    /// network).
    pub gates: usize,
    /// Logic depth (number of gate levels on the longest input-to-output
    /// path).
    pub depth: usize,
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi={} po={} gates={} depth={}",
            self.inputs, self.outputs, self.gates, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let s = NetworkStats {
            inputs: 3,
            outputs: 1,
            gates: 7,
            depth: 4,
        };
        assert_eq!(s.to_string(), "pi=3 po=1 gates=7 depth=4");
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(NetworkStats::default().gates, 0);
    }
}
