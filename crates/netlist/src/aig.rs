//! And-Inverter Graphs with complemented edges and structural hashing.

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`].  Node 0 is always the constant-false
/// node; inputs and AND gates follow in creation order, so every AND node's
/// fanins have strictly smaller indices and index order is a valid
/// topological order.
pub type NodeId = usize;

/// An AIGER-style literal: `2 * node + complement`.
///
/// ```
/// use netlist::Lit;
///
/// let lit = Lit::new(3, true);
/// assert_eq!(lit.node(), 3);
/// assert!(lit.is_complemented());
/// assert_eq!(!lit, Lit::new(3, false));
/// assert_eq!(lit.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, not complemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a node index and a complement flag.
    pub fn new(node: NodeId, complemented: bool) -> Self {
        Lit((node as u32) << 1 | complemented as u32)
    }

    /// Creates a positive (non-complemented) literal.
    pub fn positive(node: NodeId) -> Self {
        Lit::new(node, false)
    }

    /// Reconstructs a literal from its AIGER integer encoding.
    pub fn from_index(index: u32) -> Self {
        Lit(index)
    }

    /// The AIGER integer encoding `2 * node + complement`.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The node this literal refers to.
    pub fn node(self) -> NodeId {
        (self.0 >> 1) as NodeId
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns this literal with the complement flag set to `value`.
    #[must_use]
    pub fn with_complement(self, value: bool) -> Self {
        Lit(self.0 & !1 | value as u32)
    }

    /// Returns the literal complemented iff `flip` is true.
    #[must_use]
    pub fn complement_if(self, flip: bool) -> Self {
        Lit(self.0 ^ flip as u32)
    }

    /// `true` if this is one of the two constant literals.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A node of an [`Aig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (always node 0).
    Const0,
    /// A primary input with its position in the input list.
    Input {
        /// Position of this input in [`Aig::inputs`].
        position: usize,
    },
    /// A two-input AND gate over two literals.
    And {
        /// First fanin literal.
        fanin0: Lit,
        /// Second fanin literal.
        fanin1: Lit,
    },
}

impl AigNode {
    /// `true` if the node is an AND gate.
    pub fn is_and(&self) -> bool {
        matches!(self, AigNode::And { .. })
    }

    /// `true` if the node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, AigNode::Input { .. })
    }

    /// The fanin literals of an AND node (empty for other nodes).
    pub fn fanins(&self) -> Vec<Lit> {
        match self {
            AigNode::And { fanin0, fanin1 } => vec![*fanin0, *fanin1],
            _ => Vec::new(),
        }
    }
}

/// A primary output: a named literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Output name.
    pub name: String,
    /// The literal driving the output.
    pub lit: Lit,
}

/// Initial (time-zero) value of a latch.
///
/// AIGER 1.9 reset semantics: a latch starts at 0, at 1, or undefined
/// (`X`), in which case any Boolean initial value must be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatchInit {
    /// Starts at 0 (the AIGER default).
    #[default]
    Zero,
    /// Starts at 1.
    One,
    /// Uninitialised: both initial values are possible.
    X,
}

/// A latch (sequential state element) of an [`Aig`].
///
/// Latches are represented *on top of* the combinational view: the latch's
/// current-state value is an ordinary primary input (so every combinational
/// algorithm — simulation, sweeping, cut enumeration — sees it without
/// special cases) and its next-state function is an ordinary primary output.
/// This struct records which input/output positions play those roles plus
/// the initial value; sequential algorithms interpret it, combinational ones
/// ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// Position (in [`Aig::inputs`] order) of the current-state input.
    pub state_input: usize,
    /// Position (in [`Aig::outputs`] order) of the next-state output.
    pub next_output: usize,
    /// Initial value at time zero.
    pub init: LatchInit,
}

/// An And-Inverter Graph.
///
/// Construction performs constant propagation (`a ∧ 0 = 0`, `a ∧ 1 = a`,
/// `a ∧ a = a`, `a ∧ ¬a = 0`) and structural hashing, so structurally
/// identical AND gates share one node.
///
/// ```
/// use netlist::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let g1 = aig.and(a, b);
/// let g2 = aig.and(b, a);
/// assert_eq!(g1, g2, "structural hashing canonicalises operand order");
/// assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
/// # use netlist::Lit;
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
    latches: Vec<Latch>,
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const0],
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let id = self.nodes.len();
        self.nodes.push(AigNode::Input {
            position: self.inputs.len(),
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        Lit::positive(id)
    }

    /// Adds `count` primary inputs named `prefix0 … prefix{count-1}`.
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Lit> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Registers a primary output driven by `lit`.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        debug_assert!(lit.node() < self.nodes.len(), "output literal out of range");
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
    }

    /// Adds a latch and returns the (positive) literal of its current-state
    /// value.
    ///
    /// The current state becomes a primary input named `name`; the
    /// next-state function becomes a primary output named `{name}_next`,
    /// initially the latch's own state (a self-loop) until
    /// [`Aig::set_latch_next`] installs the real transition function.
    pub fn add_latch(&mut self, name: impl Into<String>, init: LatchInit) -> Lit {
        let name = name.into();
        let state_input = self.inputs.len();
        let state = self.add_input(name.clone());
        let next_output = self.outputs.len();
        self.add_output(format!("{name}_next"), state);
        self.latches.push(Latch {
            state_input,
            next_output,
            init,
        });
        state
    }

    /// Installs the next-state function of latch `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_latch_next(&mut self, index: usize, next: Lit) {
        let position = self.latches[index].next_output;
        self.set_output_lit(position, next);
    }

    /// Registers an *existing* input/output pair as a latch.  This is the
    /// low-level form used by the AIGER reader, which creates the state
    /// inputs while parsing the latch section but can only attach the
    /// next-state outputs once the gate section has been read.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range or if the input position is
    /// already claimed by another latch.
    pub fn define_latch(&mut self, state_input: usize, next_output: usize, init: LatchInit) {
        assert!(state_input < self.inputs.len(), "latch input out of range");
        assert!(
            next_output < self.outputs.len(),
            "latch output out of range"
        );
        assert!(
            self.latches.iter().all(|l| l.state_input != state_input),
            "input {state_input} is already a latch state"
        );
        self.latches.push(Latch {
            state_input,
            next_output,
            init,
        });
    }

    /// The latches, in declaration order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// The (positive) literal of latch `index`'s current-state input.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn latch_state_lit(&self, index: usize) -> Lit {
        Lit::positive(self.inputs[self.latches[index].state_input])
    }

    /// The literal driving latch `index`'s next-state function.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn latch_next_lit(&self, index: usize) -> Lit {
        self.outputs[self.latches[index].next_output].lit
    }

    /// The latch (if any) whose current state is input `position`.
    pub fn latch_of_input(&self, position: usize) -> Option<usize> {
        self.latches.iter().position(|l| l.state_input == position)
    }

    /// `true` if output `index` is the next-state function of some latch
    /// (as opposed to a real primary output).
    pub fn is_latch_next_output(&self, index: usize) -> bool {
        self.latches.iter().any(|l| l.next_output == index)
    }

    /// Creates (or reuses) the AND of two literals.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either literal refers to a node that does
    /// not exist yet.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        debug_assert!(a.node() < self.nodes.len() && b.node() < self.nodes.len());
        // Constant and trivial propagation.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (f0, f1) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(f0, f1)) {
            return Lit::positive(node);
        }
        let id = self.nodes.len();
        self.nodes.push(AigNode::And {
            fanin0: f0,
            fanin1: f1,
        });
        self.strash.insert((f0, f1), id);
        Lit::positive(id)
    }

    /// Appends an AND node with exactly these fanins, skipping constant
    /// propagation and the structural-hash lookup.
    ///
    /// This is the building block of structure-preserving rebuilds (e.g. a
    /// dangling-node sweep that must not re-fold or re-share logic): the
    /// node is appended even when an identical or foldable one exists.  The
    /// structural hash stays coherent — the new node registers itself unless
    /// an equal node is already registered — so later [`Aig::and`] calls
    /// still deduplicate against the network.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either literal refers to a node that does
    /// not exist yet.
    pub fn and_raw(&mut self, a: Lit, b: Lit) -> Lit {
        debug_assert!(a.node() < self.nodes.len() && b.node() < self.nodes.len());
        let (f0, f1) = if a <= b { (a, b) } else { (b, a) };
        let id = self.nodes.len();
        self.nodes.push(AigNode::And {
            fanin0: f0,
            fanin1: f1,
        });
        self.strash.entry((f0, f1)).or_insert(id);
        Lit::positive(id)
    }

    /// OR of two literals (built from AND and inverters).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.or(a, b)
    }

    /// Multiplexer `if s then t else e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Majority of three literals.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// AND over an arbitrary number of literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => Lit::TRUE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let (left, right) = lits.split_at(mid);
                let l = self.and_many(left);
                let r = self.and_many(right);
                self.and(l, r)
            }
        }
    }

    /// OR over an arbitrary number of literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inverted: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&inverted)
    }

    /// Number of nodes including the constant node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and()).count()
    }

    /// The node table.
    pub fn node(&self, id: NodeId) -> &AigNode {
        &self.nodes[id]
    }

    /// Node ids of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The name of input `position`.
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Replaces the literal driving output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_output_lit(&mut self, index: usize, lit: Lit) {
        self.outputs[index].lit = lit;
    }

    /// Iterator over all node ids in topological order (index order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len()
    }

    /// Iterator over the ids of AND nodes in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(move |&id| self.nodes[id].is_and())
    }

    /// Logic level of every node (inputs and constant are level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for id in 0..self.nodes.len() {
            if let AigNode::And { fanin0, fanin1 } = self.nodes[id] {
                levels[id] = 1 + levels[fanin0.node()].max(levels[fanin1.node()]);
            }
        }
        levels
    }

    /// The depth of the network (maximum level over the outputs).
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.lit.node()])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count of every node (references from AND fanins and outputs).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And { fanin0, fanin1 } = node {
                counts[fanin0.node()] += 1;
                counts[fanin1.node()] += 1;
            }
        }
        for output in &self.outputs {
            counts[output.lit.node()] += 1;
        }
        counts
    }

    /// Collects the transitive fanin of `node` (the node itself excluded),
    /// stopping once `limit` nodes have been gathered.  The result is in
    /// reverse-DFS order; constant and input nodes are included.
    pub fn transitive_fanin(&self, node: NodeId, limit: usize) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = Vec::new();
        let mut result = Vec::new();
        visited[node] = true;
        for f in self.nodes[node].fanins() {
            if !visited[f.node()] {
                visited[f.node()] = true;
                stack.push(f.node());
            }
        }
        while let Some(id) = stack.pop() {
            result.push(id);
            if result.len() >= limit {
                break;
            }
            for f in self.nodes[id].fanins() {
                if !visited[f.node()] {
                    visited[f.node()] = true;
                    stack.push(f.node());
                }
            }
        }
        result
    }

    /// `true` if `maybe_ancestor` lies in the transitive fanin of `node`.
    pub fn in_transitive_fanin(&self, node: NodeId, maybe_ancestor: NodeId) -> bool {
        if node == maybe_ancestor {
            return false;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.nodes[node].fanins().iter().map(|l| l.node()).collect();
        while let Some(id) = stack.pop() {
            if visited[id] {
                continue;
            }
            visited[id] = true;
            if id == maybe_ancestor {
                return true;
            }
            for f in self.nodes[id].fanins() {
                stack.push(f.node());
            }
        }
        false
    }

    /// Redirects every reference to `old` (in AND fanins and outputs) to the
    /// literal `replacement`, preserving complement polarity.
    ///
    /// This is the merge operation of SAT-sweeping: after `old ≡ replacement`
    /// has been proved, `old` becomes dead and a later [`Aig::cleanup`] can
    /// remove it.
    ///
    /// # Panics
    ///
    /// Panics if `replacement.node() >= old` (which would create a cycle,
    /// since references to `old` can only occur in nodes with larger ids) or
    /// if `old` is not an AND node.
    pub fn replace_node(&mut self, old: NodeId, replacement: Lit) {
        assert!(
            replacement.node() < old,
            "replacement must precede the replaced node in topological order"
        );
        assert!(self.nodes[old].is_and(), "only AND nodes can be replaced");
        for id in (old + 1)..self.nodes.len() {
            if let AigNode::And { fanin0, fanin1 } = self.nodes[id] {
                let mut new0 = fanin0;
                let mut new1 = fanin1;
                if fanin0.node() == old {
                    new0 = replacement.complement_if(fanin0.is_complemented());
                }
                if fanin1.node() == old {
                    new1 = replacement.complement_if(fanin1.is_complemented());
                }
                if new0 != fanin0 || new1 != fanin1 {
                    self.nodes[id] = AigNode::And {
                        fanin0: new0,
                        fanin1: new1,
                    };
                }
            }
        }
        for output in &mut self.outputs {
            if output.lit.node() == old {
                output.lit = replacement.complement_if(output.lit.is_complemented());
            }
        }
        // The structural hash is stale after in-place edits.
        self.strash.clear();
    }

    /// Rebuilds the AIG keeping only the logic reachable from the outputs,
    /// re-running constant propagation and structural hashing.  Returns the
    /// cleaned AIG together with a map from old node ids to new literals
    /// (dead nodes map to `None`).
    ///
    /// Inputs and outputs keep their order and count, so latches survive
    /// unchanged (their next-state cones are output cones and hence live).
    pub fn cleanup(&self) -> (Aig, Vec<Option<Lit>>) {
        let mut new = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        // Inputs are always kept so that PI ordering is stable.
        for (pos, &id) in self.inputs.iter().enumerate() {
            let lit = new.add_input(self.input_names[pos].clone());
            map[id] = Some(lit);
        }
        // Mark reachable nodes from outputs.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|o| o.lit.node()).collect();
        while let Some(id) = stack.pop() {
            if reachable[id] {
                continue;
            }
            reachable[id] = true;
            for f in self.nodes[id].fanins() {
                stack.push(f.node());
            }
        }
        for id in 0..self.nodes.len() {
            if !reachable[id] {
                continue;
            }
            if let AigNode::And { fanin0, fanin1 } = self.nodes[id] {
                let f0 = map[fanin0.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin0.is_complemented());
                let f1 = map[fanin1.node()]
                    .expect("fanin precedes node in topological order")
                    .complement_if(fanin1.is_complemented());
                map[id] = Some(new.and(f0, f1));
            }
        }
        for output in &self.outputs {
            let lit = map[output.lit.node()]
                .expect("output driver is reachable")
                .complement_if(output.lit.is_complemented());
            new.add_output(output.name.clone(), lit);
        }
        new.latches = self.latches.clone();
        (new, map)
    }

    /// Copies the logic of `other` into this AIG, driving `other`'s primary
    /// inputs with the literals in `input_map` (one per input of `other`, in
    /// declaration order).  Returns the literals corresponding to `other`'s
    /// outputs.  `other`'s output names are not registered; the caller
    /// decides what to do with the returned literals (e.g. build a miter).
    ///
    /// Latch *state* inputs of `other` count as ordinary inputs here — the
    /// caller supplies their frame values through `input_map`, which is
    /// exactly what a sequential unrolling needs.  No latches are registered
    /// on `self`.
    ///
    /// # Panics
    ///
    /// Panics if `input_map` is shorter than `other`'s input count.
    pub fn append(&mut self, other: &Aig, input_map: &[Lit]) -> Vec<Lit> {
        assert!(
            input_map.len() >= other.num_inputs(),
            "input map must cover every input of the appended network"
        );
        let mut map: Vec<Lit> = vec![Lit::FALSE; other.num_nodes()];
        for id in other.node_ids() {
            map[id] = match other.node(id) {
                AigNode::Const0 => Lit::FALSE,
                AigNode::Input { position } => input_map[*position],
                AigNode::And { fanin0, fanin1 } => {
                    let f0 = map[fanin0.node()].complement_if(fanin0.is_complemented());
                    let f1 = map[fanin1.node()].complement_if(fanin1.is_complemented());
                    self.and(f0, f1)
                }
            };
        }
        other
            .outputs()
            .iter()
            .map(|o| map[o.lit.node()].complement_if(o.lit.is_complemented()))
            .collect()
    }

    /// Summary statistics of the network.
    pub fn stats(&self) -> crate::NetworkStats {
        crate::NetworkStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            gates: self.num_ands(),
            depth: self.depth(),
            latches: self.num_latches(),
        }
    }

    /// Evaluates the network on a single input assignment (one Boolean per
    /// primary input, in declaration order), returning one Boolean per
    /// output.  Intended for tests and tiny examples; simulators should use
    /// the `bitsim` or STP crates.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the number of inputs.
    pub fn evaluate(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment length must equal the number of inputs"
        );
        let mut values = vec![false; self.nodes.len()];
        for id in 0..self.nodes.len() {
            values[id] = match self.nodes[id] {
                AigNode::Const0 => false,
                AigNode::Input { position } => assignment[position],
                AigNode::And { fanin0, fanin1 } => {
                    let v0 = values[fanin0.node()] ^ fanin0.is_complemented();
                    let v1 = values[fanin1.node()] ^ fanin1.is_complemented();
                    v0 && v1
                }
            };
        }
        self.outputs
            .iter()
            .map(|o| values[o.lit.node()] ^ o.lit.is_complemented())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> (Aig, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.xor(a, b);
        aig.add_output("y", y);
        (aig, y)
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::new(5, true);
        assert_eq!(l.index(), 11);
        assert_eq!(Lit::from_index(11), l);
        assert_eq!((!l).index(), 10);
        assert_eq!(l.with_complement(false), Lit::new(5, false));
        assert_eq!(l.complement_if(true), !l);
        assert_eq!(l.complement_if(false), l);
        assert!(Lit::TRUE.is_constant());
    }

    #[test]
    fn constant_propagation() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn raw_append_preserves_structure() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        // A raw append of an existing AND creates a duplicate node...
        let g2 = aig.and_raw(b, a);
        assert_ne!(g1, g2);
        assert_eq!(aig.num_ands(), 2);
        assert_eq!(aig.node(g2.node()).fanins(), aig.node(g1.node()).fanins());
        // ...but the structural hash still resolves to the first occurrence.
        assert_eq!(aig.and(a, b), g1);
        // A raw append of a fresh AND registers itself for later dedup.
        let g3 = aig.and_raw(a, !b);
        assert_eq!(aig.and(a, !b), g3);
    }

    #[test]
    fn evaluate_xor() {
        let (aig, _) = xor_aig();
        assert_eq!(aig.evaluate(&[false, false]), vec![false]);
        assert_eq!(aig.evaluate(&[true, false]), vec![true]);
        assert_eq!(aig.evaluate(&[false, true]), vec![true]);
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    // The expected majority value must stay in its textbook two-level form.
    #[allow(clippy::nonminimal_bool)]
    fn derived_gates_are_correct() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let or = aig.or(a, b);
        let nand = aig.nand(a, b);
        let nor = aig.nor(a, b);
        let xnor = aig.xnor(a, b);
        let mux = aig.mux(a, b, c);
        let maj = aig.maj(a, b, c);
        for gate in [or, nand, nor, xnor, mux, maj] {
            aig.add_output("o", gate);
        }
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            let (a, b, c) = (assignment[0], assignment[1], assignment[2]);
            let values = aig.evaluate(&assignment);
            assert_eq!(values[0], a || b);
            assert_eq!(values[1], !(a && b));
            assert_eq!(values[2], !(a || b));
            assert_eq!(values[3], a == b);
            assert_eq!(values[4], if a { b } else { c });
            assert_eq!(values[5], (a && b) || (a && c) || (b && c));
        }
    }

    #[test]
    fn and_or_many() {
        let mut aig = Aig::new();
        let lits = aig.add_inputs("x", 5);
        let all = aig.and_many(&lits);
        let any = aig.or_many(&lits);
        aig.add_output("all", all);
        aig.add_output("any", any);
        for i in 0..32usize {
            let assignment: Vec<bool> = (0..5).map(|j| (i >> j) & 1 == 1).collect();
            let values = aig.evaluate(&assignment);
            assert_eq!(values[0], assignment.iter().all(|&b| b));
            assert_eq!(values[1], assignment.iter().any(|&b| b));
        }
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        aig.add_output("y", g2);
        let levels = aig.levels();
        assert_eq!(levels[g1.node()], 1);
        assert_eq!(levels[g2.node()], 2);
        assert_eq!(aig.depth(), 2);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        aig.add_output("y1", g);
        aig.add_output("y2", !g);
        let counts = aig.fanout_counts();
        assert_eq!(counts[g.node()], 2);
        assert_eq!(counts[a.node()], 1);
    }

    #[test]
    fn transitive_fanin_limit() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 8);
        let root = aig.and_many(&xs);
        aig.add_output("y", root);
        let full = aig.transitive_fanin(root.node(), usize::MAX);
        assert!(full.len() >= 8);
        let limited = aig.transitive_fanin(root.node(), 3);
        assert_eq!(limited.len(), 3);
        assert!(aig.in_transitive_fanin(root.node(), xs[0].node()));
        assert!(!aig.in_transitive_fanin(xs[0].node(), root.node()));
    }

    #[test]
    fn replace_node_redirects_references() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        // g1 = a & b; g_red = (a & b) & b is structurally distinct but
        // functionally equal to g1.
        let g1 = aig.and(a, b);
        let g_red = aig.and(g1, b);
        let top = aig.and(g_red, c);
        aig.add_output("y", top);
        assert_ne!(g1, g_red);
        aig.replace_node(g_red.node(), g1);
        let (cleaned, _) = aig.cleanup();
        assert!(cleaned.num_ands() < aig.num_ands());
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            let expected = (assignment[0] && assignment[1]) && assignment[2];
            assert_eq!(cleaned.evaluate(&assignment), vec![expected]);
        }
    }

    #[test]
    fn cleanup_removes_dead_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let _dead = aig.xor(a, b);
        let live = aig.and(a, b);
        aig.add_output("y", live);
        let (cleaned, map) = aig.cleanup();
        assert_eq!(cleaned.num_ands(), 1);
        assert_eq!(cleaned.num_inputs(), 2);
        assert!(map[live.node()].is_some());
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn replace_node_rejects_forward_reference() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.xor(a, b);
        aig.add_output("y", g2);
        // g2's node id is larger than g1's: replacing g1 by g2 must panic.
        aig.replace_node(g1.node(), g2);
    }

    #[test]
    fn append_builds_a_miter() {
        let (left, _) = xor_aig();
        let (right, _) = xor_aig();
        let mut miter = Aig::new();
        let a = miter.add_input("a");
        let b = miter.add_input("b");
        let lo = miter.append(&left, &[a, b]);
        let ro = miter.append(&right, &[a, b]);
        let diff = miter.xor(lo[0], ro[0]);
        miter.add_output("diff", diff);
        for i in 0..4usize {
            let assignment: Vec<bool> = (0..2).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(miter.evaluate(&assignment), vec![false]);
        }
    }

    #[test]
    fn stats_report() {
        let (aig, _) = xor_aig();
        let stats = aig.stats();
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.latches, 0);
    }

    #[test]
    fn latches_ride_on_the_combinational_view() {
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        let q = aig.add_latch("q", LatchInit::Zero);
        let next = aig.mux(en, !q, q); // toggle while enabled
        aig.set_latch_next(0, next);
        aig.add_output("o", q);

        assert_eq!(aig.num_latches(), 1);
        assert_eq!(aig.num_inputs(), 2, "latch state is an input");
        assert_eq!(aig.num_outputs(), 2, "latch next-state is an output");
        assert_eq!(aig.latch_state_lit(0), q);
        assert_eq!(aig.latch_next_lit(0), next);
        assert_eq!(aig.latch_of_input(1), Some(0));
        assert_eq!(aig.latch_of_input(0), None);
        assert!(aig.is_latch_next_output(0));
        assert!(!aig.is_latch_next_output(1));
        assert_eq!(aig.latches()[0].init, LatchInit::Zero);
        assert_eq!(aig.stats().latches, 1);
    }

    #[test]
    fn cleanup_preserves_latches() {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let q = aig.add_latch("q", LatchInit::One);
        let _dead = aig.xor(d, q);
        let next = aig.and(d, !q);
        aig.set_latch_next(0, next);
        aig.add_output("o", q);
        let (cleaned, _) = aig.cleanup();
        assert_eq!(cleaned.num_latches(), 1);
        assert_eq!(cleaned.latches(), aig.latches());
        assert_eq!(cleaned.num_inputs(), 2);
        assert_eq!(cleaned.num_outputs(), 2);
        // The next-state cone is an output cone, so it survived the sweep.
        assert!(!cleaned.latch_next_lit(0).is_constant());
    }

    #[test]
    #[should_panic(expected = "already a latch state")]
    fn define_latch_rejects_double_claims() {
        let mut aig = Aig::new();
        let q = aig.add_latch("q", LatchInit::X);
        aig.add_output("o", q);
        aig.define_latch(0, 1, LatchInit::Zero);
    }
}
