//! k-feasible cut enumeration on AIGs.
//!
//! A *cut* of node `n` is a set of nodes (the *leaves*) such that every path
//! from a primary input to `n` passes through a leaf.  A cut is k-feasible if
//! it has at most `k` leaves.  Cut enumeration is the classic bottom-up
//! merge: the cuts of an AND node are obtained by pairwise union of its
//! fanins' cuts, pruned by size and dominance.  Cuts are the basis of both
//! LUT mapping ([`crate::lutmap`]) and of the paper's cut algorithm
//! (Section III-B), which needs the truth table of each cut.

use crate::{Aig, AigNode, NodeId};
use std::collections::HashMap;
use truthtable::TruthTable;

/// A cut: a sorted list of leaf node ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// Creates the trivial cut `{node}`.
    pub fn trivial(node: NodeId) -> Self {
        Cut { leaves: vec![node] }
    }

    /// Creates a cut from a leaf list (sorted and deduplicated).
    pub fn from_leaves(mut leaves: Vec<NodeId>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        Cut { leaves }
    }

    /// The sorted leaves.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts, returning `None` if the union exceeds `max_size`.
    pub fn merge(&self, other: &Cut, max_size: usize) -> Option<Cut> {
        let mut merged = Vec::with_capacity(self.leaves.len() + other.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() && j < other.leaves.len() {
            match self.leaves[i].cmp(&other.leaves[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.leaves[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.leaves[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.leaves[i]);
                    i += 1;
                    j += 1;
                }
            }
            if merged.len() > max_size {
                return None;
            }
        }
        merged.extend_from_slice(&self.leaves[i..]);
        merged.extend_from_slice(&other.leaves[j..]);
        if merged.len() > max_size {
            None
        } else {
            Some(Cut { leaves: merged })
        }
    }

    /// `true` if every leaf of `self` is also a leaf of `other` (so `self`
    /// dominates `other` and `other` can be pruned).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// The bounded set of cuts stored per node during enumeration.
#[derive(Debug, Clone, Default)]
pub struct CutSet {
    cuts: Vec<Cut>,
}

impl CutSet {
    /// The cuts in the set.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Adds a cut unless it is dominated; removes cuts it dominates; keeps
    /// the set bounded by `max_cuts` (smallest cuts win).
    pub fn insert(&mut self, cut: Cut, max_cuts: usize) {
        if self.cuts.iter().any(|c| c.dominates(&cut)) {
            return;
        }
        self.cuts.retain(|c| !cut.dominates(c));
        self.cuts.push(cut);
        self.cuts.sort_by_key(|c| c.size());
        self.cuts.truncate(max_cuts);
    }
}

/// Parameters of cut enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutParams {
    /// Maximum number of leaves per cut (the `k` of k-feasible).
    pub max_leaves: usize,
    /// Maximum number of cuts kept per node.
    pub max_cuts: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams {
            max_leaves: 6,
            max_cuts: 8,
        }
    }
}

/// Enumerates k-feasible cuts for every node of the AIG.
///
/// Index `i` of the result holds the cut set of node `i`.  Inputs and the
/// constant node only get their trivial cut.
pub fn enumerate_cuts(aig: &Aig, params: CutParams) -> Vec<CutSet> {
    let mut sets: Vec<CutSet> = vec![CutSet::default(); aig.num_nodes()];
    for id in aig.node_ids() {
        match aig.node(id) {
            AigNode::Const0 | AigNode::Input { .. } => {
                sets[id].insert(Cut::trivial(id), params.max_cuts);
            }
            AigNode::And { fanin0, fanin1 } => {
                // Collect cuts of the two fanins (clone to avoid aliasing the
                // mutable insertion below).
                let cuts0 = sets[fanin0.node()].cuts.clone();
                let cuts1 = sets[fanin1.node()].cuts.clone();
                let set = &mut sets[id];
                for a in &cuts0 {
                    for b in &cuts1 {
                        if let Some(merged) = a.merge(b, params.max_leaves) {
                            set.insert(merged, params.max_cuts);
                        }
                    }
                }
                // The trivial cut is always present so mapping can fall back
                // to a single-node LUT.
                set.insert(Cut::trivial(id), params.max_cuts);
            }
        }
    }
    sets
}

/// Computes the truth table of `root` expressed over the leaves of `cut`.
///
/// Leaf `i` of the cut corresponds to variable `i` of the returned table.
///
/// # Panics
///
/// Panics if the cut is not a valid cut of `root` (some path reaches an
/// input or the constant node without passing through a leaf is fine — the
/// constant contributes a constant — but a missing leaf containing logic
/// would recurse past it, which is detected when an input node that is not a
/// leaf is reached).
pub fn cut_truth_table(aig: &Aig, root: NodeId, cut: &Cut) -> TruthTable {
    let num_vars = cut.size();
    let mut cache: HashMap<NodeId, TruthTable> = HashMap::new();
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        cache.insert(leaf, TruthTable::variable(num_vars, i));
    }
    compute_tt(aig, root, num_vars, &mut cache)
}

fn compute_tt(
    aig: &Aig,
    node: NodeId,
    num_vars: usize,
    cache: &mut HashMap<NodeId, TruthTable>,
) -> TruthTable {
    if let Some(tt) = cache.get(&node) {
        return tt.clone();
    }
    let tt = match aig.node(node) {
        AigNode::Const0 => TruthTable::zeros(num_vars),
        AigNode::Input { .. } => {
            panic!("cut does not cover input node {node}; invalid cut")
        }
        AigNode::And { fanin0, fanin1 } => {
            let t0 = compute_tt(aig, fanin0.node(), num_vars, cache);
            let t1 = compute_tt(aig, fanin1.node(), num_vars, cache);
            let t0 = if fanin0.is_complemented() { !&t0 } else { t0 };
            let t1 = if fanin1.is_complemented() { !&t1 } else { t1 };
            &t0 & &t1
        }
    };
    cache.insert(node, tt.clone());
    tt
}

/// Size of the cut-local *maximum fanout-free cone* (MFFC) of `root`: the
/// number of AND nodes inside the cone of `cut` that die when `root` is
/// replaced by another implementation of the cut function.
///
/// A cone node is in the MFFC when *every* one of its fanouts (counted
/// globally, outputs included — pass [`Aig::fanout_counts`]) is itself an
/// MFFC node; the root is always in (its fanouts are redirected to the
/// replacement).  Leaves of the cut and the constant node are never
/// counted.  Rewriting uses this as its gain baseline: replacing the root
/// with an `n`-node implementation nets `mffc − n` gates.
pub fn cut_mffc_size(aig: &Aig, root: NodeId, cut: &Cut, fanout_counts: &[usize]) -> usize {
    cut_mffc(aig, root, cut, fanout_counts).1.len()
}

/// The cone and cut-local MFFC of `root` over `cut` (see [`cut_mffc_size`]).
///
/// Returns `(cone, mffc)`: `cone` holds every AND node on a path from the
/// root down to (but excluding) the leaves, in descending id order; `mffc`
/// is the subset that dies when the root is replaced.  The root is in both.
pub fn cut_mffc(
    aig: &Aig,
    root: NodeId,
    cut: &Cut,
    fanout_counts: &[usize],
) -> (Vec<NodeId>, Vec<NodeId>) {
    let is_leaf = |id: NodeId| cut.leaves().binary_search(&id).is_ok();
    // Collect the cone: AND nodes on paths from the root down to the leaves.
    let mut cone: Vec<NodeId> = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if cone.contains(&id) || is_leaf(id) || !aig.node(id).is_and() {
            continue;
        }
        cone.push(id);
        for f in aig.node(id).fanins() {
            stack.push(f.node());
        }
    }
    // Walk the cone top-down (descending id = reverse topological order):
    // a node is dead when all its global references come from already-dead
    // cone nodes.  `deref` counts the references accounted for so far.
    cone.sort_unstable_by(|a, b| b.cmp(a));
    let mut deref: HashMap<NodeId, usize> = HashMap::new();
    let mut dead: Vec<NodeId> = Vec::new();
    for &id in &cone {
        let accounted = deref.get(&id).copied().unwrap_or(0);
        if id == root || accounted == fanout_counts[id] {
            dead.push(id);
            for f in aig.node(id).fanins() {
                let fid = f.node();
                if !is_leaf(fid) && aig.node(fid).is_and() {
                    *deref.entry(fid).or_insert(0) += 1;
                }
            }
        }
    }
    (cone, dead)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_aig() -> (Aig, Vec<crate::Lit>, crate::Lit) {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 4);
        let g1 = aig.and(inputs[0], inputs[1]);
        let g2 = aig.or(inputs[2], inputs[3]);
        let root = aig.xor(g1, g2);
        aig.add_output("y", root);
        (aig, inputs, root)
    }

    #[test]
    fn merge_and_dominance() {
        let a = Cut::from_leaves(vec![1, 2]);
        let b = Cut::from_leaves(vec![2, 3]);
        let merged = a.merge(&b, 4).unwrap();
        assert_eq!(merged.leaves(), &[1, 2, 3]);
        assert!(a.merge(&b, 2).is_none());
        assert!(a.dominates(&merged));
        assert!(!merged.dominates(&a));
    }

    #[test]
    fn cut_set_prunes_dominated() {
        let mut set = CutSet::default();
        set.insert(Cut::from_leaves(vec![1, 2, 3]), 8);
        set.insert(Cut::from_leaves(vec![1, 2]), 8);
        assert_eq!(set.cuts().len(), 1);
        assert_eq!(set.cuts()[0].leaves(), &[1, 2]);
        // Inserting a cut dominated by {1, 2} is a no-op.
        set.insert(Cut::from_leaves(vec![1, 2, 4]), 8);
        assert_eq!(set.cuts().len(), 1);
        // A cut not containing {1, 2} is kept.
        set.insert(Cut::from_leaves(vec![1, 3]), 8);
        assert_eq!(set.cuts().len(), 2);
    }

    #[test]
    fn enumerate_finds_pi_cut() {
        let (aig, inputs, root) = small_aig();
        let sets = enumerate_cuts(&aig, CutParams::default());
        let root_cuts = sets[root.node()].cuts();
        assert!(!root_cuts.is_empty());
        let pi_nodes: Vec<usize> = inputs.iter().map(|l| l.node()).collect();
        let has_pi_cut = root_cuts
            .iter()
            .any(|c| c.leaves().iter().all(|l| pi_nodes.contains(l)) && c.size() == 4);
        assert!(has_pi_cut, "expected the 4-PI cut of the root");
    }

    #[test]
    fn cut_truth_table_matches_evaluation() {
        let (aig, inputs, root) = small_aig();
        let pi_cut = Cut::from_leaves(inputs.iter().map(|l| l.node()).collect());
        let tt = cut_truth_table(&aig, root.node(), &pi_cut);
        for i in 0..16usize {
            let assignment: Vec<bool> = (0..4).map(|j| (i >> j) & 1 == 1).collect();
            // The cut truth table describes the node, so undo the output
            // literal's complement before comparing with the PO value.
            let expected = aig.evaluate(&assignment)[0] ^ root.is_complemented();
            // Leaves are sorted by node id, which here matches PI order.
            assert_eq!(tt.evaluate(&assignment), expected, "pattern {i}");
        }
    }

    #[test]
    fn trivial_cut_truth_table_is_projection() {
        let (aig, _, root) = small_aig();
        let cut = Cut::trivial(root.node());
        let tt = cut_truth_table(&aig, root.node(), &cut);
        assert_eq!(tt, TruthTable::variable(1, 0));
    }

    #[test]
    #[should_panic(expected = "invalid cut")]
    fn invalid_cut_panics() {
        let (aig, _, root) = small_aig();
        // A cut that misses the inputs entirely.
        let cut = Cut::from_leaves(vec![root.node() - 1]);
        let _ = cut_truth_table(&aig, root.node(), &cut);
    }

    #[test]
    fn mffc_counts_exclusive_cone_nodes() {
        let (aig, inputs, root) = small_aig();
        let fanouts = aig.fanout_counts();
        let pi_cut = Cut::from_leaves(inputs.iter().map(|l| l.node()).collect());
        // The XOR cone over the PI cut is exclusive to the root: every AND
        // node feeds only the root's cone, so the whole cone dies with it.
        assert_eq!(
            cut_mffc_size(&aig, root.node(), &pi_cut, &fanouts),
            aig.num_ands()
        );
    }

    #[test]
    fn mffc_excludes_shared_nodes() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 3);
        let shared = aig.and(xs[0], xs[1]);
        let root = aig.and(shared, xs[2]);
        aig.add_output("y", root);
        aig.add_output("z", shared); // external fanout keeps `shared` alive
        let fanouts = aig.fanout_counts();
        let cut = Cut::from_leaves(xs.iter().map(|l| l.node()).collect());
        // Only the root dies; `shared` survives through the second output.
        assert_eq!(cut_mffc_size(&aig, root.node(), &cut, &fanouts), 1);
    }

    #[test]
    fn mffc_stops_at_cut_leaves() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 4);
        let inner = aig.and(xs[0], xs[1]);
        let mid = aig.and(inner, xs[2]);
        let root = aig.and(mid, xs[3]);
        aig.add_output("y", root);
        let fanouts = aig.fanout_counts();
        // With `mid` as a leaf, the cone is just the root even though
        // `mid` and `inner` would die in the full-cone MFFC.
        let cut = Cut::from_leaves(vec![mid.node(), xs[3].node()]);
        assert_eq!(cut_mffc_size(&aig, root.node(), &cut, &fanouts), 1);
        // Over the PI cut, all three AND nodes are exclusive to the root.
        let pi_cut = Cut::from_leaves(xs.iter().map(|l| l.node()).collect());
        assert_eq!(cut_mffc_size(&aig, root.node(), &pi_cut, &fanouts), 3);
    }

    #[test]
    fn constant_in_cone_is_handled() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        // g = a & !a folds to constant false; build g2 = a | false explicitly.
        let g2 = aig.or(a, crate::Lit::FALSE);
        aig.add_output("y", g2);
        // g2 folds to `a`, so the cut TT of the output node is the projection.
        let cut = Cut::trivial(g2.node());
        let tt = cut_truth_table(&aig, g2.node(), &cut);
        assert_eq!(tt.num_vars(), 1);
    }
}
