//! CNF formulas, propositional literals and the Tseitin transformation of
//! AIG cones.

use netlist::{Aig, AigNode};
use std::fmt;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from its index.
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A propositional literal: a variable or its negation.
///
/// ```
/// use satsolver::{SatLit, Var};
///
/// let v = Var::from_index(3);
/// let p = SatLit::positive(v);
/// assert_eq!(!p, SatLit::negative(v));
/// assert_eq!(p.var(), v);
/// assert!(!p.is_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(u32);

impl SatLit {
    /// Creates a literal.
    pub fn new(var: Var, negated: bool) -> Self {
        SatLit(var.0 << 1 | negated as u32)
    }

    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        SatLit::new(var, false)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        SatLit::new(var, true)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if the literal is a negation.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense integer code (`2 * var + negated`), used for watch indexing.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from its dense integer code (inverse of
    /// [`SatLit::code`]), used by state snapshots.
    pub fn from_code(code: u32) -> Self {
        SatLit(code)
    }

    /// DIMACS-style signed integer (1-based, negative for negated).
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;

    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Display for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A CNF formula: a variable pool plus a list of clauses.
///
/// The container is independent of the solver so that encodings can be
/// constructed, inspected and serialised (DIMACS) without committing to a
/// solving strategy.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<SatLit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        self.clauses.push(lits.to_vec());
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Vec<SatLit>] {
        &self.clauses
    }

    /// Adds the Tseitin clauses for `out ↔ a ∧ b`.
    pub fn add_and_gate(&mut self, out: SatLit, a: SatLit, b: SatLit) {
        self.add_clause(&[!out, a]);
        self.add_clause(&[!out, b]);
        self.add_clause(&[out, !a, !b]);
    }

    /// Adds the Tseitin clauses for `out ↔ a ⊕ b`.
    pub fn add_xor_gate(&mut self, out: SatLit, a: SatLit, b: SatLit) {
        self.add_clause(&[!out, a, b]);
        self.add_clause(&[!out, !a, !b]);
        self.add_clause(&[out, !a, b]);
        self.add_clause(&[out, a, !b]);
    }

    /// Serialises the formula in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                out.push_str(&format!("{} ", lit.to_dimacs()));
            }
            out.push_str("0\n");
        }
        out
    }

    /// Evaluates the formula under a full assignment (index = variable
    /// index).  Returns `true` iff every clause is satisfied.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable count.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] != lit.is_negative())
        })
    }
}

/// Tseitin-encodes an entire AIG into a [`Cnf`].
///
/// Returns the formula together with one variable per AIG node (index =
/// node id).  The constant node is constrained to false; outputs are not
/// constrained (callers add the property clauses they need).
pub fn encode_aig(aig: &Aig) -> (Cnf, Vec<Var>) {
    let mut cnf = Cnf::new();
    let vars: Vec<Var> = (0..aig.num_nodes()).map(|_| cnf.new_var()).collect();
    // Constant node is false.
    cnf.add_clause(&[SatLit::negative(vars[0])]);
    for id in aig.node_ids() {
        if let AigNode::And { fanin0, fanin1 } = aig.node(id) {
            let a = SatLit::new(vars[fanin0.node()], fanin0.is_complemented());
            let b = SatLit::new(vars[fanin1.node()], fanin1.is_complemented());
            cnf.add_and_gate(SatLit::positive(vars[id]), a, b);
        }
    }
    (cnf, vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(4);
        let p = SatLit::positive(v);
        let n = SatLit::negative(v);
        assert_eq!(!p, n);
        assert_eq!(p.code(), 8);
        assert_eq!(n.code(), 9);
        assert_eq!(p.to_dimacs(), 5);
        assert_eq!(n.to_dimacs(), -5);
    }

    #[test]
    fn and_gate_clauses_are_consistent() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let o = cnf.new_var();
        cnf.add_and_gate(
            SatLit::positive(o),
            SatLit::positive(a),
            SatLit::positive(b),
        );
        for bits in 0..8usize {
            let assignment = vec![bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let consistent = assignment[2] == (assignment[0] && assignment[1]);
            assert_eq!(cnf.evaluate(&assignment), consistent);
        }
    }

    #[test]
    fn xor_gate_clauses_are_consistent() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let o = cnf.new_var();
        cnf.add_xor_gate(
            SatLit::positive(o),
            SatLit::positive(a),
            SatLit::positive(b),
        );
        for bits in 0..8usize {
            let assignment = vec![bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let consistent = assignment[2] == (assignment[0] ^ assignment[1]);
            assert_eq!(cnf.evaluate(&assignment), consistent);
        }
    }

    #[test]
    fn encode_aig_respects_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.xor(a, b);
        aig.add_output("y", y);
        let (cnf, vars) = encode_aig(&aig);
        // For each input assignment, the unique consistent extension gives
        // the right output value.
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let expected = aig.evaluate(&[va, vb])[0];
            // Build the consistent assignment by evaluating every node.
            let mut assignment = vec![false; cnf.num_vars()];
            for id in aig.node_ids() {
                let value = match aig.node(id) {
                    AigNode::Const0 => false,
                    AigNode::Input { position } => {
                        if *position == 0 {
                            va
                        } else {
                            vb
                        }
                    }
                    AigNode::And { fanin0, fanin1 } => {
                        let v0 = assignment[vars[fanin0.node()].index()] ^ fanin0.is_complemented();
                        let v1 = assignment[vars[fanin1.node()].index()] ^ fanin1.is_complemented();
                        v0 && v1
                    }
                };
                assignment[vars[id].index()] = value;
            }
            assert!(cnf.evaluate(&assignment));
            assert_eq!(
                assignment[vars[y.node()].index()] ^ y.is_complemented(),
                expected
            );
        }
    }

    #[test]
    fn dimacs_output() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(&[SatLit::positive(a), SatLit::negative(b)]);
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 1"));
        assert!(text.contains("1 -2 0"));
    }
}
