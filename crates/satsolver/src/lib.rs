//! # satsolver — CDCL SAT solving with a circuit front-end
//!
//! SAT-sweeping needs a solver that can (dis)prove the equivalence of two
//! nodes of an AIG and hand back counter-examples (Section II-C of the
//! paper).  This crate provides:
//!
//! * [`Solver`] — a from-scratch CDCL solver: two-literal watching, first-UIP
//!   clause learning, VSIDS branching, phase saving, Luby restarts, learnt
//!   clause database reduction, incremental solving under assumptions and a
//!   conflict budget that yields [`SolveResult::Unknown`] (the paper's
//!   `unDET` outcome).
//! * [`cnf`] — CNF formula containers and the Tseitin transformation of AIG
//!   cones.
//! * [`CircuitSat`] — the incremental circuit front-end used by the SAT
//!   sweeper: it lazily encodes transitive-fanin cones and answers
//!   constant-ness and pairwise-equivalence queries with counter-examples
//!   expressed at the primary inputs.
//!
//! ```
//! use satsolver::{SatLit, Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[SatLit::positive(a), SatLit::positive(b)]);
//! solver.add_clause(&[SatLit::negative(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod cnf;
pub mod dimacs;
mod heap;
mod solver;

pub use circuit::{CircuitSat, CircuitSatSnapshot, EquivOutcome, QueryStats};
pub use cnf::{Cnf, Var};
pub use dimacs::{parse_dimacs, solve_dimacs, ParseDimacsError};
pub use solver::{
    ClauseSnapshot, SatLit, SolveResult, Solver, SolverConfig, SolverSnapshot, SolverStats,
};
