//! Incremental circuit front-end: SAT queries directly on AIG nodes.
//!
//! The SAT sweeper asks two kinds of questions about nodes of an AIG:
//! *is node `a` equivalent to node `b` (possibly complemented)?* and *is node
//! `a` a constant?*  [`CircuitSat`] answers both by lazily Tseitin-encoding
//! the transitive-fanin cones of the queried literals into one incremental
//! [`Solver`] (this mirrors the "circuit-based SAT solver \[with\] direct
//! access to the network" used in the paper), and translates satisfying
//! assignments back into counter-example patterns over the primary inputs.

use crate::cnf::{SatLit, Var};
use crate::solver::{SolveResult, Solver, SolverSnapshot, SolverStats};
use netlist::{Aig, AigNode, Lit, NodeId};

/// A complete snapshot of a [`CircuitSat`] front-end: the underlying
/// [`SolverSnapshot`] plus the lazy node-encoding maps.  Restoring it against
/// the *same* AIG (see [`CircuitSat::from_snapshot`]) yields a front-end
/// whose future query answers are identical to the original's — the building
/// block of the sweeping engine's checkpoint/resume guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSatSnapshot {
    /// The CDCL solver state.
    pub solver: SolverSnapshot,
    /// SAT variable index of each AIG node, if allocated.
    pub node_var: Vec<Option<u32>>,
    /// Whether each node's AND-gate clauses have been added.
    pub encoded: Vec<bool>,
    /// Query statistics.
    pub stats: QueryStats,
}

/// Outcome of an equivalence or constant-ness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivOutcome {
    /// The property was proved (the miter is unsatisfiable).
    Equivalent,
    /// The property was disproved; the payload is a counter-example
    /// assignment over the primary inputs (in PI declaration order).
    CounterExample(Vec<bool>),
    /// The conflict budget was exhausted (`unDET` in the paper).
    Undetermined,
}

/// Counters describing the SAT activity of a sweeping run (the "SAT calls"
/// and "Total SAT calls" columns of Table II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total number of SAT queries issued.
    pub total_calls: u64,
    /// Queries answered "satisfiable" (a counter-example was produced).
    pub sat_calls: u64,
    /// Queries answered "unsatisfiable" (the property was proved).
    pub unsat_calls: u64,
    /// Queries that exhausted their conflict budget.
    pub undetermined_calls: u64,
}

/// Incremental SAT interface over a fixed AIG.
///
/// ```
/// use netlist::Aig;
/// use satsolver::{CircuitSat, EquivOutcome};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.and(a, b);
/// let g = aig.and(b, a);
/// aig.add_output("f", f);
///
/// let mut sat = CircuitSat::new(&aig);
/// assert_eq!(sat.prove_equivalent(f, g, 1_000), EquivOutcome::Equivalent);
/// match sat.prove_equivalent(f, a, 1_000) {
///     EquivOutcome::CounterExample(ce) => assert_eq!(ce.len(), 2),
///     other => panic!("expected counter-example, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct CircuitSat<'a> {
    aig: &'a Aig,
    solver: Solver,
    /// SAT variable of each AIG node, allocated lazily.
    node_var: Vec<Option<Var>>,
    /// Whether the AND-gate clauses of a node have been added.
    encoded: Vec<bool>,
    stats: QueryStats,
}

impl<'a> CircuitSat<'a> {
    /// Creates a front-end for the given AIG.
    pub fn new(aig: &'a Aig) -> Self {
        CircuitSat {
            aig,
            solver: Solver::new(),
            node_var: vec![None; aig.num_nodes()],
            encoded: vec![false; aig.num_nodes()],
            stats: QueryStats::default(),
        }
    }

    /// Statistics about the queries issued so far.
    pub fn query_stats(&self) -> QueryStats {
        self.stats
    }

    /// Statistics of the underlying CDCL solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Captures the complete front-end state (see [`CircuitSatSnapshot`]).
    pub fn snapshot(&self) -> CircuitSatSnapshot {
        CircuitSatSnapshot {
            solver: self.solver.snapshot(),
            node_var: self
                .node_var
                .iter()
                .map(|v| v.map(|v| v.index() as u32))
                .collect(),
            encoded: self.encoded.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds a front-end over `aig` from a snapshot taken against the
    /// same network.  Returns an error message if the snapshot's arities or
    /// references do not fit the network or the solver state is corrupt.
    pub fn from_snapshot(aig: &'a Aig, snap: &CircuitSatSnapshot) -> Result<Self, &'static str> {
        if snap.node_var.len() != aig.num_nodes() || snap.encoded.len() != aig.num_nodes() {
            return Err("circuit snapshot was taken against a different network");
        }
        let solver = Solver::from_snapshot(&snap.solver)?;
        if snap
            .node_var
            .iter()
            .flatten()
            .any(|&v| v as usize >= solver.num_vars())
        {
            return Err("circuit snapshot references an unallocated SAT variable");
        }
        Ok(CircuitSat {
            aig,
            solver,
            node_var: snap
                .node_var
                .iter()
                .map(|v| v.map(|v| Var::from_index(v as usize)))
                .collect(),
            encoded: snap.encoded.clone(),
            stats: snap.stats,
        })
    }

    /// The SAT literal corresponding to an AIG literal, encoding the node's
    /// transitive fanin on demand.
    pub fn lit_to_sat(&mut self, lit: Lit) -> SatLit {
        self.encode_cone(lit.node());
        let var = self.node_var[lit.node()].expect("cone encoding allocates the variable");
        SatLit::new(var, lit.is_complemented())
    }

    fn var_of(&mut self, node: NodeId) -> Var {
        if let Some(v) = self.node_var[node] {
            return v;
        }
        let v = self.solver.new_var();
        self.node_var[node] = Some(v);
        v
    }

    /// Adds the Tseitin clauses of `node`'s transitive fanin (iteratively, to
    /// avoid recursion depth limits on deep circuits).
    fn encode_cone(&mut self, node: NodeId) {
        let mut stack = vec![node];
        while let Some(current) = stack.pop() {
            if self.encoded[current] {
                continue;
            }
            self.encoded[current] = true;
            match self.aig.node(current) {
                AigNode::Const0 => {
                    let v = self.var_of(current);
                    self.solver.add_clause(&[SatLit::negative(v)]);
                }
                AigNode::Input { .. } => {
                    let _ = self.var_of(current);
                }
                AigNode::And { fanin0, fanin1 } => {
                    let (f0, f1) = (*fanin0, *fanin1);
                    let out = self.var_of(current);
                    let a_var = self.var_of(f0.node());
                    let b_var = self.var_of(f1.node());
                    let a = SatLit::new(a_var, f0.is_complemented());
                    let b = SatLit::new(b_var, f1.is_complemented());
                    let out = SatLit::positive(out);
                    self.solver.add_clause(&[!out, a]);
                    self.solver.add_clause(&[!out, b]);
                    self.solver.add_clause(&[out, !a, !b]);
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
            }
        }
    }

    /// Extracts the primary-input assignment of the current model.  Inputs
    /// that were never encoded (outside the queried cones) or left
    /// unassigned default to `false`.
    fn extract_counterexample(&self) -> Vec<bool> {
        self.aig
            .inputs()
            .iter()
            .map(|&node| {
                self.node_var[node]
                    .and_then(|v| self.solver.model_value(v))
                    .unwrap_or(false)
            })
            .collect()
    }

    fn record(&mut self, result: SolveResult) {
        self.stats.total_calls += 1;
        match result {
            SolveResult::Sat => self.stats.sat_calls += 1,
            SolveResult::Unsat => self.stats.unsat_calls += 1,
            SolveResult::Unknown => self.stats.undetermined_calls += 1,
        }
    }

    /// Checks whether two AIG literals are functionally equivalent,
    /// spending at most `conflict_budget` conflicts.
    ///
    /// The query encodes the miter `a ⊕ b` and asks for a satisfying
    /// assignment; UNSAT proves equivalence, SAT yields a counter-example
    /// over the primary inputs.
    pub fn prove_equivalent(&mut self, a: Lit, b: Lit, conflict_budget: u64) -> EquivOutcome {
        let sa = self.lit_to_sat(a);
        let sb = self.lit_to_sat(b);
        // Fresh selector variable d with d → (a ⊕ b); assuming d asks the
        // solver to find a distinguishing assignment.
        let d = self.solver.new_var();
        let d_pos = SatLit::positive(d);
        // d ∧ a → ¬b  and  d ∧ ¬a → b
        self.solver.add_clause(&[!d_pos, !sa, !sb]);
        self.solver.add_clause(&[!d_pos, sa, sb]);
        let result = self.solver.solve_limited(&[d_pos], conflict_budget);
        self.record(result);
        match result {
            SolveResult::Unsat => EquivOutcome::Equivalent,
            SolveResult::Sat => EquivOutcome::CounterExample(self.extract_counterexample()),
            SolveResult::Unknown => EquivOutcome::Undetermined,
        }
    }

    /// Checks whether an AIG literal is the constant `value`.
    ///
    /// UNSAT (no assignment makes the literal differ from `value`) proves
    /// constant-ness; SAT yields a counter-example.
    pub fn prove_constant(&mut self, lit: Lit, value: bool, conflict_budget: u64) -> EquivOutcome {
        let sl = self.lit_to_sat(lit);
        let goal = if value { !sl } else { sl };
        let result = self.solver.solve_limited(&[goal], conflict_budget);
        self.record(result);
        match result {
            SolveResult::Unsat => EquivOutcome::Equivalent,
            SolveResult::Sat => EquivOutcome::CounterExample(self.extract_counterexample()),
            SolveResult::Unknown => EquivOutcome::Undetermined,
        }
    }

    /// Finds an assignment satisfying all given AIG literals simultaneously
    /// (used by SAT-guided pattern generation).  Returns `None` if no such
    /// assignment exists or the budget ran out.
    pub fn find_assignment(
        &mut self,
        constraints: &[Lit],
        conflict_budget: u64,
    ) -> Option<Vec<bool>> {
        let assumptions: Vec<SatLit> = constraints.iter().map(|&l| self.lit_to_sat(l)).collect();
        let result = self.solver.solve_limited(&assumptions, conflict_budget);
        self.record(result);
        match result {
            SolveResult::Sat => Some(self.extract_counterexample()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn redundant_aig() -> (Aig, Lit, Lit, Lit) {
        // f = a & b built twice with different structure, plus g = a ^ b.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let f2_inner = aig.and(f1, b); // (a & b) & b == a & b
        let g = aig.xor(a, b);
        aig.add_output("f", f2_inner);
        aig.add_output("g", g);
        (aig, f1, f2_inner, g)
    }

    #[test]
    fn proves_true_equivalence() {
        let (aig, f1, f2, _) = redundant_aig();
        let mut sat = CircuitSat::new(&aig);
        assert_eq!(
            sat.prove_equivalent(f1, f2, 10_000),
            EquivOutcome::Equivalent
        );
        assert_eq!(sat.query_stats().unsat_calls, 1);
    }

    #[test]
    fn disproves_with_counterexample() {
        let (aig, f1, _, g) = redundant_aig();
        let mut sat = CircuitSat::new(&aig);
        match sat.prove_equivalent(f1, g, 10_000) {
            EquivOutcome::CounterExample(ce) => {
                // The counter-example must actually distinguish the nodes.
                let values = aig.evaluate(&ce);
                let _ = values;
                let f_val = eval_lit(&aig, f1, &ce);
                let g_val = eval_lit(&aig, g, &ce);
                assert_ne!(f_val, g_val);
            }
            other => panic!("expected a counter-example, got {other:?}"),
        }
        assert_eq!(sat.query_stats().sat_calls, 1);
    }

    fn eval_lit(aig: &Aig, lit: Lit, assignment: &[bool]) -> bool {
        // Evaluate by creating a throwaway network view: reuse Aig::evaluate
        // via a scratch AIG is overkill; walk values directly instead.
        let mut values = vec![false; aig.num_nodes()];
        for id in aig.node_ids() {
            values[id] = match aig.node(id) {
                netlist::AigNode::Const0 => false,
                netlist::AigNode::Input { position } => assignment[*position],
                netlist::AigNode::And { fanin0, fanin1 } => {
                    (values[fanin0.node()] ^ fanin0.is_complemented())
                        && (values[fanin1.node()] ^ fanin1.is_complemented())
                }
            };
        }
        values[lit.node()] ^ lit.is_complemented()
    }

    #[test]
    fn complemented_equivalence() {
        let (aig, f1, f2, _) = redundant_aig();
        let mut sat = CircuitSat::new(&aig);
        // f1 and !f2 differ everywhere: expect a counter-example.
        assert!(matches!(
            sat.prove_equivalent(f1, !f2, 10_000),
            EquivOutcome::CounterExample(_)
        ));
        // The complemented pair is equivalent.
        assert_eq!(
            sat.prove_equivalent(!f1, !f2, 10_000),
            EquivOutcome::Equivalent
        );
    }

    #[test]
    fn constant_detection() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // h = (a & b) & (!a) is constant false but not folded structurally.
        let t = aig.and(a, b);
        let h = aig.and(t, !a);
        aig.add_output("h", h);
        let mut sat = CircuitSat::new(&aig);
        assert_eq!(
            sat.prove_constant(h, false, 10_000),
            EquivOutcome::Equivalent
        );
        match sat.prove_constant(t, false, 10_000) {
            EquivOutcome::CounterExample(ce) => {
                assert!(eval_lit(&aig, t, &ce));
            }
            other => panic!("expected counter-example, got {other:?}"),
        }
    }

    #[test]
    fn find_assignment_satisfies_constraints() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.xor(a, b);
        let g2 = aig.or(b, c);
        aig.add_output("g1", g1);
        aig.add_output("g2", g2);
        let mut sat = CircuitSat::new(&aig);
        let assignment = sat.find_assignment(&[g1, !g2], 10_000);
        // g1 = a^b = 1 and g2 = b|c = 0 forces b=0, c=0, a=1.
        assert_eq!(assignment, Some(vec![true, false, false]));
        // Contradictory constraints have no assignment.
        assert_eq!(sat.find_assignment(&[g1, !g1], 10_000), None);
    }

    #[test]
    fn circuit_snapshot_restore_answers_identically() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let mut gates = Vec::new();
        for i in 0..5 {
            gates.push(aig.and(xs[i], xs[i + 1]));
        }
        let sum = aig.or_many(&gates);
        aig.add_output("y", sum);

        let mut original = CircuitSat::new(&aig);
        // Build incremental history (encoded cones, selector clauses).
        for i in 0..3 {
            let _ = original.prove_equivalent(gates[i], gates[(i + 1) % 3], 10_000);
        }
        let snap = original.snapshot();
        let mut restored = CircuitSat::from_snapshot(&aig, &snap).expect("valid snapshot");
        assert_eq!(restored.snapshot(), snap);

        // Identical future queries — outcomes, counter-example models and
        // final states all agree.
        for i in 0..5 {
            for j in 0..5 {
                let a = original.prove_equivalent(gates[i], gates[j], 10_000);
                let b = restored.prove_equivalent(gates[i], gates[j], 10_000);
                assert_eq!(a, b, "query ({i}, {j})");
            }
        }
        assert_eq!(original.snapshot(), restored.snapshot());
        assert_eq!(original.query_stats(), restored.query_stats());

        // A snapshot taken against one network is rejected by another.
        let mut other = Aig::new();
        let a = other.add_input("a");
        let b = other.add_input("b");
        let g = other.and(a, b);
        other.add_output("g", g);
        assert!(CircuitSat::from_snapshot(&other, &snap).is_err());
    }

    #[test]
    fn many_incremental_queries_reuse_the_solver() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs("x", 6);
        let mut gates = Vec::new();
        for i in 0..5 {
            gates.push(aig.and(xs[i], xs[i + 1]));
        }
        let sum = aig.or_many(&gates);
        aig.add_output("y", sum);
        let mut sat = CircuitSat::new(&aig);
        for i in 0..5 {
            for j in 0..5 {
                let outcome = sat.prove_equivalent(gates[i], gates[j], 10_000);
                if i == j {
                    assert_eq!(outcome, EquivOutcome::Equivalent);
                } else {
                    assert!(matches!(outcome, EquivOutcome::CounterExample(_)));
                }
            }
        }
        assert_eq!(sat.query_stats().total_calls, 25);
    }
}
