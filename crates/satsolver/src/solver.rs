//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two-literal
//! watching, first-UIP conflict analysis, VSIDS branching with an indexed
//! heap, phase saving, Luby restarts and learnt-clause database reduction.
//! Queries can be budgeted with a conflict limit, in which case the solver
//! answers [`SolveResult::Unknown`] — the `unDET` outcome the SAT-sweeping
//! algorithm reacts to by marking a candidate as *don't touch*.

pub use crate::cnf::SatLit;
use crate::cnf::Var;
use crate::heap::VarOrder;

/// Outcome of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found (retrieve it with
    /// [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was found.
    Unknown,
}

/// Tunable solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities at each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities at each conflict.
    pub clause_decay: f64,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Initial learnt-clause limit before database reduction triggers.
    pub learnt_limit_base: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            learnt_limit_base: 4000,
        }
    }
}

/// Aggregate statistics of a solver instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of top-level `solve` calls.
    pub solve_calls: u64,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<SatLit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// One clause of a [`SolverSnapshot`].
///
/// The literal order is part of the state: positions 0 and 1 are the watched
/// literals, and the traversal order during propagation determines which
/// conflict is found first.  A restored clause must be verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseSnapshot {
    /// The literals, watched literals first, in stored order.
    pub lits: Vec<SatLit>,
    /// Whether the clause was learnt (subject to database reduction).
    pub learnt: bool,
    /// VSIDS-style clause activity.
    pub activity: f64,
    /// Whether the clause has been deleted by database reduction (deleted
    /// clauses still occupy their index — reasons reference indices).
    pub deleted: bool,
}

/// A complete, behaviour-exact snapshot of a [`Solver`] at decision level 0.
///
/// A CDCL solver's answers are history-dependent: learnt clauses, VSIDS
/// activities, saved phases and watch-list order all steer the search, so
/// two solvers agree on future queries only if *all* of that state agrees.
/// `SolverSnapshot` captures every field verbatim; restoring it with
/// [`Solver::from_snapshot`] yields a solver whose observable behaviour is
/// indistinguishable from the original.  This is the foundation of the
/// sweeping engine's checkpoint/resume guarantee.
///
/// Snapshots can only be taken between queries (the solver is always at
/// decision level 0 there, with an empty assumption trail limit stack and
/// cleared analysis flags).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSnapshot {
    /// The tunable parameters.
    pub config: SolverConfig,
    /// All clauses, original and learnt, in allocation order.
    pub clauses: Vec<ClauseSnapshot>,
    /// Per-literal watch lists (`watches[lit.code()]`), verbatim order.
    pub watches: Vec<Vec<usize>>,
    /// Current (level-0) assignments.
    pub assigns: Vec<Option<bool>>,
    /// Saved phases.
    pub phase: Vec<bool>,
    /// Assignment levels (level 0 for all assigned variables).
    pub level: Vec<u32>,
    /// Reason clause indices of propagated literals.
    pub reason: Vec<Option<usize>>,
    /// VSIDS variable activities.
    pub activity: Vec<f64>,
    /// The VSIDS heap array (order matters for tie-breaking).
    pub order_heap: Vec<usize>,
    /// Position of each variable in the heap (`usize::MAX` if absent).
    pub order_position: Vec<usize>,
    /// The level-0 trail.
    pub trail: Vec<SatLit>,
    /// Propagation queue head (equals the trail length between queries).
    pub qhead: usize,
    /// Current variable activity increment.
    pub var_inc: f64,
    /// Current clause activity increment.
    pub cla_inc: f64,
    /// `false` once the formula is unconditionally unsatisfiable.
    pub ok: bool,
    /// The most recent model (empty or stale between queries).
    pub model: Vec<Option<bool>>,
    /// Aggregate statistics.
    pub stats: SolverStats,
    /// Number of live learnt clauses.
    pub num_learnts: usize,
}

/// A CDCL SAT solver.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// watches[lit.code()] lists clause indices currently watching `lit`.
    watches: Vec<Vec<usize>>,
    assigns: Vec<Option<bool>>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    activity: Vec<f64>,
    order: VarOrder,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    var_inc: f64,
    cla_inc: f64,
    ok: bool,
    model: Vec<Option<bool>>,
    stats: SolverStats,
    num_learnts: usize,
    seen: Vec<bool>,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.index(), &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.num_learnts as u64;
        s
    }

    /// Adds a clause.  Returns `false` if the solver is already in an
    /// unsatisfiable state (an empty clause was derived at the top level).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was not allocated with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert!(
            lits.iter().all(|l| l.var().index() < self.num_vars()),
            "clause references an unallocated variable"
        );
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        // Normalise: sort, dedupe, drop false literals, detect tautologies
        // and satisfied clauses.
        let mut norm: Vec<SatLit> = lits.to_vec();
        norm.sort();
        norm.dedup();
        let mut filtered = Vec::with_capacity(norm.len());
        for &lit in &norm {
            if norm.contains(&!lit) {
                return true; // tautology
            }
            match self.value(lit) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => filtered.push(lit),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(filtered, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<SatLit>, learnt: bool) -> usize {
        let idx = self.clauses.len();
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        idx
    }

    /// Solves the formula without assumptions and without a conflict budget.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(&[], u64::MAX)
    }

    /// Solves under assumptions without a conflict budget.
    pub fn solve_with_assumptions(&mut self, assumptions: &[SatLit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
    }

    /// Solves under assumptions with a conflict budget; returns
    /// [`SolveResult::Unknown`] when the budget is exhausted.
    pub fn solve_limited(&mut self, assumptions: &[SatLit], conflict_budget: u64) -> SolveResult {
        self.stats.solve_calls += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions, conflict_budget);
        self.cancel_until(0);
        result
    }

    /// The value of `var` in the most recent satisfying assignment, or
    /// `None` if the variable was irrelevant (any value satisfies).
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied().flatten()
    }

    /// The value of a literal in the most recent satisfying assignment.
    pub fn model_lit_value(&self, lit: SatLit) -> Option<bool> {
        self.model_value(lit.var()).map(|v| v != lit.is_negative())
    }

    /// Captures the complete solver state (see [`SolverSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (the solver is between queries — and
    /// therefore at decision level 0 — whenever it is externally reachable).
    pub fn snapshot(&self) -> SolverSnapshot {
        assert_eq!(
            self.trail_lim.len(),
            0,
            "solver snapshots are taken between queries, at decision level 0"
        );
        debug_assert!(self.seen.iter().all(|&s| !s), "analysis flags are clear");
        let (order_heap, order_position) = self.order.to_parts();
        SolverSnapshot {
            config: self.config,
            clauses: self
                .clauses
                .iter()
                .map(|c| ClauseSnapshot {
                    lits: c.lits.clone(),
                    learnt: c.learnt,
                    activity: c.activity,
                    deleted: c.deleted,
                })
                .collect(),
            watches: self.watches.clone(),
            assigns: self.assigns.clone(),
            phase: self.phase.clone(),
            level: self.level.clone(),
            reason: self.reason.clone(),
            activity: self.activity.clone(),
            order_heap,
            order_position,
            trail: self.trail.clone(),
            qhead: self.qhead,
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            ok: self.ok,
            model: self.model.clone(),
            stats: self.stats,
            num_learnts: self.num_learnts,
        }
    }

    /// Rebuilds a solver from a snapshot.  Returns an error message if the
    /// snapshot is internally inconsistent (wrong vector arities, clause or
    /// variable references out of range, corrupt heap), so corrupt data is
    /// rejected instead of producing a solver that panics later.
    pub fn from_snapshot(snap: &SolverSnapshot) -> Result<Self, &'static str> {
        let num_vars = snap.assigns.len();
        let arity_ok = snap.phase.len() == num_vars
            && snap.level.len() == num_vars
            && snap.reason.len() == num_vars
            && snap.activity.len() == num_vars
            && snap.order_position.len() == num_vars
            && snap.watches.len() == 2 * num_vars;
        if !arity_ok {
            return Err("solver snapshot vector arities disagree");
        }
        // Every attached clause has at least two literals (units are
        // enqueued, never attached); a shorter clause would panic inside
        // `propagate` when its missing watch position is accessed.
        if snap.clauses.iter().any(|c| c.lits.len() < 2) {
            return Err("solver snapshot contains a clause with fewer than two literals");
        }
        if snap
            .clauses
            .iter()
            .flat_map(|c| &c.lits)
            .any(|l| l.var().index() >= num_vars)
        {
            return Err("solver snapshot clause references an unallocated variable");
        }
        let num_clauses = snap.clauses.len();
        if snap
            .watches
            .iter()
            .flatten()
            .chain(snap.reason.iter().flatten())
            .any(|&ci| ci >= num_clauses)
        {
            return Err("solver snapshot references an out-of-range clause");
        }
        if snap.trail.iter().any(|l| l.var().index() >= num_vars)
            || snap.qhead > snap.trail.len()
            || snap.model.len() > num_vars
        {
            return Err("solver snapshot trail or model is inconsistent");
        }
        let order = VarOrder::from_parts(snap.order_heap.clone(), snap.order_position.clone())
            .ok_or("solver snapshot heap is corrupt")?;
        let live_learnts = snap
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count();
        if snap.num_learnts != live_learnts {
            return Err("solver snapshot learnt-clause count disagrees");
        }
        Ok(Solver {
            config: snap.config,
            clauses: snap
                .clauses
                .iter()
                .map(|c| Clause {
                    lits: c.lits.clone(),
                    learnt: c.learnt,
                    activity: c.activity,
                    deleted: c.deleted,
                })
                .collect(),
            watches: snap.watches.clone(),
            assigns: snap.assigns.clone(),
            phase: snap.phase.clone(),
            level: snap.level.clone(),
            reason: snap.reason.clone(),
            activity: snap.activity.clone(),
            order,
            trail: snap.trail.clone(),
            trail_lim: Vec::new(),
            qhead: snap.qhead,
            var_inc: snap.var_inc,
            cla_inc: snap.cla_inc,
            ok: snap.ok,
            model: snap.model.clone(),
            stats: snap.stats,
            num_learnts: snap.num_learnts,
            seen: vec![false; num_vars],
        })
    }

    // ------------------------------------------------------------------
    // Internal machinery.
    // ------------------------------------------------------------------

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn value(&self, lit: SatLit) -> Option<bool> {
        self.assigns[lit.var().index()].map(|v| v != lit.is_negative())
    }

    fn enqueue(&mut self, lit: SatLit, reason: Option<usize>) {
        debug_assert!(self.value(lit).is_none());
        let var = lit.var().index();
        self.assigns[var] = Some(!lit.is_negative());
        self.level[var] = self.decision_level() as u32;
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail is non-empty");
            let var = lit.var().index();
            self.phase[var] = !lit.is_negative();
            self.assigns[var] = None;
            self.reason[var] = None;
            self.order.insert(var, &self.activity);
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut iter = watch_list.into_iter();
            while let Some(ci) = iter.next() {
                if self.clauses[ci].deleted {
                    continue;
                }
                // Make sure the false literal is at position 1.
                {
                    let clause = &mut self.clauses[ci];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let candidate = self.clauses[ci].lits[k];
                    if self.value(candidate) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[candidate.code()].push(ci);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                kept.push(ci);
                if self.value(first) == Some(false) {
                    conflict = Some(ci);
                    // Copy back the remaining watchers and stop.
                    kept.extend(iter);
                    break;
                }
                self.enqueue(first, Some(ci));
            }
            self.watches[false_lit.code()].extend(kept);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, ci: usize) {
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit::positive(Var::from_index(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;
        let current_level = self.decision_level() as u32;

        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl].lits.clone();
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = self.reason[v].expect("non-decision literal has a reason");
            p = Some(lit);
        }
        learnt[0] = !p.expect("first UIP literal exists");

        // Compute the backtrack level (second-highest level in the clause).
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };

        // Clear the seen flags of the literals kept in the learnt clause.
        for lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        (learnt, backtrack_level)
    }

    fn reduce_db(&mut self) {
        // Collect learnt clause indices sorted by activity (ascending).
        let mut learnt_indices: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, _)| i)
            .collect();
        learnt_indices.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: std::collections::HashSet<usize> =
            self.reason.iter().flatten().copied().collect();
        let to_remove = learnt_indices.len() / 2;
        let mut removed = 0usize;
        for &ci in &learnt_indices {
            if removed >= to_remove {
                break;
            }
            if locked.contains(&ci) {
                continue;
            }
            self.clauses[ci].deleted = true;
            self.num_learnts -= 1;
            removed += 1;
        }
        // Deleted clauses are skipped lazily during propagation; the watch
        // lists clean themselves up as they are visited.
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 ...
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn search(&mut self, assumptions: &[SatLit], conflict_budget: u64) -> SolveResult {
        let mut conflicts_this_call = 0u64;
        let mut restarts = 0u64;
        let mut next_restart = Self::luby(restarts) * self.config.restart_base;
        let mut learnt_limit = self.config.learnt_limit_base + self.clauses.len() / 3;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                if self.decision_level() <= assumptions.len() {
                    // The conflict depends only on assumptions: the query is
                    // UNSAT under the given assumptions.
                    return SolveResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.cancel_until(backtrack_level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, None);
                } else {
                    let ci = self.attach_clause(learnt, true);
                    self.bump_clause(ci);
                    self.enqueue(asserting, Some(ci));
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay;
                if conflicts_this_call >= conflict_budget {
                    return SolveResult::Unknown;
                }
                if conflicts_this_call >= next_restart {
                    restarts += 1;
                    self.stats.restarts += 1;
                    next_restart =
                        conflicts_this_call + Self::luby(restarts) * self.config.restart_base;
                    self.cancel_until(0);
                }
                if self.num_learnts > learnt_limit {
                    learnt_limit += learnt_limit / 2;
                    self.reduce_db();
                }
            } else {
                // No conflict: extend the assignment.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value(p) {
                        Some(true) => {
                            self.new_decision_level();
                        }
                        Some(false) => return SolveResult::Unsat,
                        None => {
                            self.new_decision_level();
                            self.enqueue(p, None);
                        }
                    }
                    continue;
                }
                // Pick a branching variable.
                let mut decision = None;
                while let Some(var) = self.order.pop_max(&self.activity) {
                    if self.assigns[var].is_none() {
                        decision = Some(var);
                        break;
                    }
                }
                match decision {
                    None => {
                        // All variables assigned: a model has been found.
                        self.model = self.assigns.clone();
                        return SolveResult::Sat;
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let lit = SatLit::new(Var::from_index(var), !self.phase[var]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: isize) -> SatLit {
        let var = solver_vars[(i.unsigned_abs()) - 1];
        if i < 0 {
            SatLit::negative(var)
        } else {
            SatLit::positive(var)
        }
    }

    fn make_vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        let vars = make_vars(&mut s, 1);
        s.add_clause(&[lit(&vars, 1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vars[0]), Some(true));
        assert!(!s.add_clause(&[lit(&vars, -1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_propagation_chain() {
        let mut s = Solver::new();
        let vars = make_vars(&mut s, 4);
        s.add_clause(&[lit(&vars, 1)]);
        s.add_clause(&[lit(&vars, -1), lit(&vars, 2)]);
        s.add_clause(&[lit(&vars, -2), lit(&vars, 3)]);
        s.add_clause(&[lit(&vars, -3), lit(&vars, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vars {
            assert_eq!(s.model_value(*v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // x1: pigeon1 in hole, x2: pigeon2 in hole; both must be placed and
        // cannot share.
        let mut s = Solver::new();
        let vars = make_vars(&mut s, 2);
        s.add_clause(&[lit(&vars, 1)]);
        s.add_clause(&[lit(&vars, 2)]);
        s.add_clause(&[lit(&vars, -1), lit(&vars, -2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_respected() {
        let mut s = Solver::new();
        let vars = make_vars(&mut s, 2);
        s.add_clause(&[lit(&vars, 1), lit(&vars, 2)]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&vars, -1)]),
            SolveResult::Sat
        );
        assert_eq!(s.model_value(vars[1]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(&vars, -1), lit(&vars, -2)]),
            SolveResult::Unsat
        );
        // The solver remains usable after an UNSAT-under-assumptions call.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A hard pigeonhole instance with a tiny budget should time out.
        let (mut s, _) = pigeonhole(6, 5);
        assert_eq!(s.solve_limited(&[], 3), SolveResult::Unknown);
    }

    /// Builds the pigeonhole principle PHP(pigeons, holes).
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Var>>) {
        let mut s = Solver::new();
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &grid {
            let clause: Vec<SatLit> = row.iter().map(|&v| SatLit::positive(v)).collect();
            s.add_clause(&clause);
        }
        for (p1, row1) in grid.iter().enumerate() {
            for row2 in &grid[p1 + 1..] {
                for (&v1, &v2) in row1.iter().zip(row2.iter()) {
                    s.add_clause(&[SatLit::negative(v1), SatLit::negative(v2)]);
                }
            }
        }
        (s, grid)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut s, grid) = pigeonhole(4, 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Each pigeon sits in exactly one hole of the model, no sharing.
        let mut used = [false; 4];
        for row in &grid {
            let holes: Vec<usize> = row
                .iter()
                .enumerate()
                .filter(|(_, &v)| s.model_value(v) == Some(true))
                .map(|(h, _)| h)
                .collect();
            let h = *holes.first().expect("a satisfied pigeon clause");
            assert!(!used[h], "two pigeons share hole {h}");
            used[h] = true;
        }
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..40 {
            let num_vars = 6;
            let num_clauses = 3 + (round % 20);
            let clauses: Vec<Vec<isize>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=num_vars as isize);
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1usize << num_vars) {
                for clause in &clauses {
                    let ok = clause.iter().any(|&l| {
                        let value = (bits >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            value
                        } else {
                            !value
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            let vars = make_vars(&mut s, num_vars);
            for clause in &clauses {
                let lits: Vec<SatLit> = clause.iter().map(|&l| lit(&vars, l)).collect();
                s.add_clause(&lits);
            }
            let result = s.solve();
            if brute_sat {
                assert_eq!(result, SolveResult::Sat, "round {round}");
                // Verify the model satisfies every clause.
                for clause in &clauses {
                    assert!(clause.iter().any(|&l| {
                        let value = s.model_value(vars[l.unsigned_abs() - 1]).unwrap_or(false);
                        if l > 0 {
                            value
                        } else {
                            !value
                        }
                    }));
                }
            } else {
                assert_eq!(result, SolveResult::Unsat, "round {round}");
            }
        }
    }

    #[test]
    fn tautology_and_duplicate_literals() {
        let mut s = Solver::new();
        let vars = make_vars(&mut s, 2);
        assert!(s.add_clause(&[lit(&vars, 1), lit(&vars, -1)]));
        assert!(s.add_clause(&[lit(&vars, 2), lit(&vars, 2)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vars[1]), Some(true));
    }

    #[test]
    fn snapshot_restore_is_behaviour_exact() {
        // Build nontrivial history: an interrupted hard query leaves learnt
        // clauses, bumped activities and saved phases behind.
        let (mut original, grid) = pigeonhole(6, 5);
        assert_eq!(original.solve_limited(&[], 8), SolveResult::Unknown);
        let snap = original.snapshot();
        let mut restored = Solver::from_snapshot(&snap).expect("valid snapshot");
        // Restoring is lossless: a fresh snapshot of the restored solver is
        // identical to the one it came from.
        assert_eq!(restored.snapshot(), snap);

        // The same future query sequence must produce identical results,
        // identical models and identical final states.
        let queries: Vec<Vec<SatLit>> = vec![
            vec![],
            vec![SatLit::positive(grid[0][0])],
            vec![SatLit::negative(grid[0][0]), SatLit::negative(grid[0][1])],
        ];
        for assumptions in &queries {
            let a = original.solve_limited(assumptions, 50);
            let b = restored.solve_limited(assumptions, 50);
            assert_eq!(a, b);
            for row in &grid {
                for &v in row {
                    assert_eq!(original.model_value(v), restored.model_value(v));
                }
            }
        }
        assert_eq!(original.snapshot(), restored.snapshot());
    }

    #[test]
    fn snapshot_rejects_corrupt_state() {
        let (mut s, _) = pigeonhole(4, 3);
        let _ = s.solve_limited(&[], 5);
        let good = s.snapshot();
        assert!(Solver::from_snapshot(&good).is_ok());

        let mut wrong_arity = good.clone();
        wrong_arity.phase.pop();
        assert!(Solver::from_snapshot(&wrong_arity).is_err());

        let mut bad_clause_ref = good.clone();
        bad_clause_ref.watches[0].push(usize::MAX / 2);
        assert!(Solver::from_snapshot(&bad_clause_ref).is_err());

        let mut bad_heap = good.clone();
        if bad_heap.order_heap.len() >= 2 {
            bad_heap.order_heap.swap(0, 1); // positions no longer match
            assert!(Solver::from_snapshot(&bad_heap).is_err());
        }

        let mut bad_learnts = good.clone();
        bad_learnts.num_learnts += 1;
        assert!(Solver::from_snapshot(&bad_learnts).is_err());

        let mut short_clause = good.clone();
        if let Some(clause) = short_clause.clauses.first_mut() {
            clause.lits.truncate(1);
            assert!(Solver::from_snapshot(&short_clause).is_err());
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, _) = pigeonhole(5, 4);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);
        assert_eq!(stats.solve_calls, 1);
    }
}
