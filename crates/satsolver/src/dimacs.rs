//! DIMACS CNF parsing and solving.
//!
//! The sweeping engine talks to the solver through the circuit front-end,
//! but a standalone DIMACS interface makes the solver testable against
//! standard CNF instances and usable as a drop-in library solver.

use crate::cnf::{Cnf, SatLit, Var};
use crate::solver::{SolveResult, Solver};
use std::error::Error;
use std::fmt;

/// Error returned when DIMACS text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    message: String,
}

impl ParseDimacsError {
    fn new(message: impl Into<String>) -> Self {
        ParseDimacsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dimacs: {}", self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a [`Cnf`].
///
/// Comment lines (`c …`) are skipped; the `p cnf V C` header is validated
/// against the actual clause count only loosely (extra or missing clauses
/// are tolerated, as many real-world files get the header wrong).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] when the header is missing or a literal is
/// not an integer.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars = None;
    let mut current: Vec<SatLit> = Vec::new();
    let mut allocated = 0usize;

    let ensure_var = |cnf: &mut Cnf, allocated: &mut usize, index: usize| {
        while *allocated < index {
            cnf.new_var();
            *allocated += 1;
        }
    };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() < 3 || fields[0] != "cnf" {
                return Err(ParseDimacsError::new(
                    "header must be 'p cnf <vars> <clauses>'",
                ));
            }
            let vars: usize = fields[1]
                .parse()
                .map_err(|_| ParseDimacsError::new("invalid variable count"))?;
            declared_vars = Some(vars);
            ensure_var(&mut cnf, &mut allocated, vars);
            continue;
        }
        if declared_vars.is_none() {
            return Err(ParseDimacsError::new("clause before the 'p cnf' header"));
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::new(format!("invalid literal '{token}'")))?;
            if value == 0 {
                cnf.add_clause(&current);
                current.clear();
            } else {
                let var_index = value.unsigned_abs() as usize;
                ensure_var(&mut cnf, &mut allocated, var_index);
                let var = Var::from_index(var_index - 1);
                current.push(if value < 0 {
                    SatLit::negative(var)
                } else {
                    SatLit::positive(var)
                });
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(&current);
    }
    Ok(cnf)
}

/// Loads a [`Cnf`] into a fresh [`Solver`] and solves it.
///
/// Returns the result together with the solver (so the model can be
/// inspected on `Sat`).
pub fn solve_dimacs(text: &str) -> Result<(SolveResult, Solver), ParseDimacsError> {
    let cnf = parse_dimacs(text)?;
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..cnf.num_vars()).map(|_| solver.new_var()).collect();
    let _ = vars;
    for clause in cnf.clauses() {
        solver.add_clause(clause);
    }
    let result = solver.solve();
    Ok((result, solver))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_solves_satisfiable_instance() {
        let text = "c a comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let (result, solver) = solve_dimacs(text).unwrap();
        assert_eq!(result, SolveResult::Sat);
        // x1 = false forces x2 = false (clause 1), hence x3 = true.
        assert_eq!(solver.model_value(Var::from_index(0)), Some(false));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn parses_and_solves_unsatisfiable_instance() {
        let text = "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n";
        let (result, _) = solve_dimacs(text).unwrap();
        assert_eq!(result, SolveResult::Unsat);
    }

    #[test]
    fn multi_line_clauses_and_trailing_clause() {
        let text = "p cnf 3 2\n1 2\n3 0\n-3 -1 0";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn grows_variable_pool_beyond_header() {
        let text = "p cnf 1 1\n5 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert!(parse_dimacs("p cnf x y\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 two 0\n").is_err());
    }

    #[test]
    fn round_trips_with_cnf_to_dimacs() {
        let text = "p cnf 3 2\n1 -2 0\n2 -3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let rendered = cnf.to_dimacs();
        let reparsed = parse_dimacs(&rendered).unwrap();
        assert_eq!(reparsed.num_clauses(), cnf.num_clauses());
        assert_eq!(reparsed.num_vars(), cnf.num_vars());
    }
}
