//! Indexed max-heap ordering variables by VSIDS activity.

/// A binary max-heap over variable indices keyed by an external activity
/// array, with `O(log n)` insertion, removal of the maximum and in-place
/// priority increase.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarOrder {
    /// Heap array of variable indices.
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    #[allow(dead_code)] // used by unit tests and kept for API symmetry
    pub(crate) fn new() -> Self {
        VarOrder::default()
    }

    /// Ensures `var` has a slot in the position table.
    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.position.len() < num_vars {
            self.position.resize(num_vars, ABSENT);
        }
    }

    pub(crate) fn contains(&self, var: usize) -> bool {
        self.position.get(var).copied().unwrap_or(ABSENT) != ABSENT
    }

    #[allow(dead_code)] // used by unit tests
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `var` (no-op if already present).
    pub(crate) fn insert(&mut self, var: usize, activity: &[f64]) {
        self.grow_to(var + 1);
        if self.contains(var) {
            return;
        }
        self.position[var] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("heap is non-empty");
        self.position[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `var`'s activity increased.
    pub(crate) fn update(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            self.sift_up(self.position[var], activity);
        }
    }

    fn sift_up(&mut self, mut idx: usize, activity: &[f64]) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if activity[self.heap[idx]] > activity[self.heap[parent]] {
                self.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize, activity: &[f64]) {
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut largest = idx;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[largest]] {
                largest = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[largest]]
            {
                largest = right;
            }
            if largest == idx {
                break;
            }
            self.swap(idx, largest);
            idx = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = a;
        self.position[self.heap[b]] = b;
    }

    /// The raw heap array and position table, for state snapshots.  The heap
    /// order (not only the membership) is part of the solver's deterministic
    /// behaviour: equal-activity variables pop in heap order, so a restored
    /// solver must reproduce the array verbatim.
    pub(crate) fn to_parts(&self) -> (Vec<usize>, Vec<usize>) {
        (self.heap.clone(), self.position.clone())
    }

    /// Rebuilds a heap from parts produced by [`VarOrder::to_parts`].
    ///
    /// Returns `None` if the parts are inconsistent (positions not matching
    /// the heap array), so corrupt snapshots surface as errors instead of
    /// breaking the heap invariants silently.
    pub(crate) fn from_parts(heap: Vec<usize>, position: Vec<usize>) -> Option<Self> {
        for (idx, &var) in heap.iter().enumerate() {
            if position.get(var).copied() != Some(idx) {
                return None;
            }
        }
        let members = position.iter().filter(|&&p| p != ABSENT).count();
        if members != heap.len() {
            return None;
        }
        Some(VarOrder { heap, position })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut order = VarOrder::new();
        for v in 0..4 {
            order.insert(v, &activity);
        }
        assert_eq!(order.pop_max(&activity), Some(1));
        assert_eq!(order.pop_max(&activity), Some(3));
        assert_eq!(order.pop_max(&activity), Some(2));
        assert_eq!(order.pop_max(&activity), Some(0));
        assert_eq!(order.pop_max(&activity), None);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut order = VarOrder::new();
        order.insert(0, &activity);
        order.insert(0, &activity);
        order.insert(1, &activity);
        assert_eq!(order.pop_max(&activity), Some(1));
        assert_eq!(order.pop_max(&activity), Some(0));
        assert!(order.is_empty());
    }

    #[test]
    fn update_after_activity_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut order = VarOrder::new();
        for v in 0..3 {
            order.insert(v, &activity);
        }
        activity[0] = 10.0;
        order.update(0, &activity);
        assert_eq!(order.pop_max(&activity), Some(0));
    }
}
