//! Bitwise Boolean operators on truth tables.
//!
//! Operators are implemented for references so that tables are not consumed:
//! `&a & &b`, `&a | &b`, `&a ^ &b`, `!&a`.  Owned variants are provided as
//! well for convenience.

use crate::table::TruthTable;
use std::ops::{BitAnd, BitOr, BitXor, Not};

fn zip_words(a: &TruthTable, b: &TruthTable, f: impl Fn(u64, u64) -> u64) -> TruthTable {
    assert_eq!(
        a.num_vars(),
        b.num_vars(),
        "truth table operands must have the same number of variables"
    );
    let words: Vec<u64> = a
        .words()
        .iter()
        .zip(b.words().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    TruthTable::from_words(a.num_vars(), &words)
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;

    fn bitand(self, rhs: &TruthTable) -> TruthTable {
        zip_words(self, rhs, |x, y| x & y)
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;

    fn bitor(self, rhs: &TruthTable) -> TruthTable {
        zip_words(self, rhs, |x, y| x | y)
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;

    fn bitxor(self, rhs: &TruthTable) -> TruthTable {
        zip_words(self, rhs, |x, y| x ^ y)
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        let words: Vec<u64> = self.words().iter().map(|&x| !x).collect();
        TruthTable::from_words(self.num_vars(), &words)
    }
}

impl BitAnd for TruthTable {
    type Output = TruthTable;

    fn bitand(self, rhs: TruthTable) -> TruthTable {
        &self & &rhs
    }
}

impl BitOr for TruthTable {
    type Output = TruthTable;

    fn bitor(self, rhs: TruthTable) -> TruthTable {
        &self | &rhs
    }
}

impl BitXor for TruthTable {
    type Output = TruthTable;

    fn bitxor(self, rhs: TruthTable) -> TruthTable {
        &self ^ &rhs
    }
}

impl Not for TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        !&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        assert_eq!((&a & &b).to_hex(), "8");
        assert_eq!((&a | &b).to_hex(), "e");
        assert_eq!((&a ^ &b).to_hex(), "6");
        assert_eq!((!&a).to_hex(), "5");
    }

    #[test]
    fn owned_ops_match_reference_ops() {
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 2);
        assert_eq!(a.clone() & b.clone(), &a & &b);
        assert_eq!(a.clone() | b.clone(), &a | &b);
        assert_eq!(a.clone() ^ b.clone(), &a ^ &b);
        assert_eq!(!a.clone(), !&a);
    }

    #[test]
    fn negation_masks_unused_bits() {
        let a = TruthTable::variable(2, 0);
        let n = !&a;
        // Only the low 4 bits may be set for a 2-variable table.
        assert_eq!(n.words()[0] & !0xF, 0);
        assert_eq!(!&n, a);
    }

    #[test]
    #[should_panic(expected = "same number of variables")]
    fn mismatched_vars_panics() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(3, 0);
        let _ = &a & &b;
    }

    #[test]
    fn de_morgan() {
        let a = TruthTable::variable(4, 1);
        let b = TruthTable::variable(4, 3);
        assert_eq!(!&(&a & &b), &(!&a) | &(!&b));
        assert_eq!(!&(&a | &b), &(!&a) & &(!&b));
    }
}
