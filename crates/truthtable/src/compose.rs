//! Functional composition of truth tables.

use crate::TruthTable;

/// Composes an outer function with one inner function per input.
///
/// `outer` is a table over `k` variables; `inners[i]` supplies the function
/// feeding input `i`, and all inner tables must share the same variable
/// count `n`.  The result is the table of
/// `outer(inners[0](x), …, inners[k-1](x))` over those `n` variables.
///
/// This is how the STP-based simulator folds a cut into a single k-LUT: the
/// truth tables of the cut's internal nodes are composed bottom-up into the
/// truth table of the cut root expressed over the cut leaves
/// (Section III-B of the paper).
///
/// # Panics
///
/// Panics if the number of inner functions differs from the arity of
/// `outer`, or if the inner functions do not all have the same variable
/// count.
///
/// ```
/// use truthtable::{compose, TruthTable};
///
/// // outer = AND(a, b); feed it with x0 XOR x1 and x2.
/// let outer = TruthTable::from_hex(2, "8")?;
/// let xor = TruthTable::from_hex(3, "66")?; // x0 ^ x1 over 3 vars
/// let x2 = TruthTable::variable(3, 2);
/// let f = compose(&outer, &[xor, x2]);
/// assert_eq!(f.evaluate(&[true, false, true]), true);
/// assert_eq!(f.evaluate(&[true, true, true]), false);
/// # Ok::<(), truthtable::ParseTruthTableError>(())
/// ```
pub fn compose(outer: &TruthTable, inners: &[TruthTable]) -> TruthTable {
    assert_eq!(
        inners.len(),
        outer.num_vars(),
        "compose requires one inner function per outer variable"
    );
    if inners.is_empty() {
        return outer.clone();
    }
    let n = inners[0].num_vars();
    assert!(
        inners.iter().all(|t| t.num_vars() == n),
        "all inner functions must have the same variable count"
    );

    // Shannon-style evaluation: for every minterm of the result, evaluate the
    // inner functions, form the outer index and look it up.  For the small
    // windows used by exhaustive simulation (n ≤ 16) this is fast enough and
    // has no intermediate blow-up.
    let mut result = TruthTable::zeros(n);
    for i in 0..(1usize << n) {
        let mut outer_index = 0usize;
        for (k, inner) in inners.iter().enumerate() {
            if inner.get_bit(i) {
                outer_index |= 1 << k;
            }
        }
        if outer.get_bit(outer_index) {
            result.set_bit(i, true);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_identity() {
        // outer = projection of input 0 composed with (f) gives f back.
        let f = TruthTable::from_hex(3, "e8").unwrap();
        let proj = TruthTable::variable(1, 0);
        assert_eq!(compose(&proj, std::slice::from_ref(&f)), f);
    }

    #[test]
    fn compose_with_variables_is_remapping() {
        let and2 = TruthTable::from_hex(2, "8").unwrap();
        let x1 = TruthTable::variable(3, 1);
        let x2 = TruthTable::variable(3, 2);
        let composed = compose(&and2, &[x1, x2]);
        for i in 0..8usize {
            let args: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(composed.evaluate(&args), args[1] && args[2]);
        }
    }

    #[test]
    // The expected value must stay written as NAND-of-NANDs, the structure
    // under test.
    #[allow(clippy::nonminimal_bool)]
    fn compose_nested_nand_tree() {
        // NAND(NAND(a, b), NAND(b, c)) over 3 leaves.
        let nand = TruthTable::from_binary_str(2, "0111").unwrap();
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let c = TruthTable::variable(3, 2);
        let left = compose(&nand, &[a.clone(), b.clone()]);
        let right = compose(&nand, &[b.clone(), c.clone()]);
        let root = compose(&nand, &[left, right]);
        for i in 0..8usize {
            let args: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            let expected = !((!(args[0] && args[1])) && (!(args[1] && args[2])));
            assert_eq!(root.evaluate(&args), expected);
        }
    }

    #[test]
    fn compose_zero_arity_outer() {
        let constant = TruthTable::ones(0);
        assert_eq!(compose(&constant, &[]), constant);
    }

    #[test]
    #[should_panic(expected = "one inner function per outer variable")]
    fn compose_arity_mismatch() {
        let and2 = TruthTable::from_hex(2, "8").unwrap();
        let x = TruthTable::variable(2, 0);
        let _ = compose(&and2, &[x]);
    }
}
