//! # truthtable — dynamic bit-packed truth tables
//!
//! Truth tables are the simulation signatures of exhaustive simulation
//! (Section II-A of the paper) and the functions stored at the nodes of a
//! k-LUT network.  This crate provides a kitty-style dynamic truth table:
//! a bit-packed table over a fixed number of variables with the usual
//! Boolean operations, cofactoring, support computation and composition.
//!
//! Convention: bit `i` of the table is the function value for the assignment
//! where variable `j` takes the value `(i >> j) & 1` (variable 0 is the
//! least-significant index).  This is the same convention the `stp` crate
//! uses for [`LogicMatrix::from_truth_table_bits`].
//!
//! ```
//! use truthtable::TruthTable;
//!
//! let a = TruthTable::variable(3, 0);
//! let b = TruthTable::variable(3, 1);
//! let c = TruthTable::variable(3, 2);
//! let maj = (&(&a & &b) | &(&(&a & &c) | &(&b & &c)));
//! assert_eq!(maj.count_ones(), 4);
//! assert!(maj.support().eq([0, 1, 2]));
//! ```
//!
//! [`LogicMatrix::from_truth_table_bits`]: https://docs.rs/stp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
pub mod npn;
mod ops;
mod table;

pub use compose::compose;
pub use npn::NpnTransform;
pub use table::{ParseTruthTableError, TruthTable};
