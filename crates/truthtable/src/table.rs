use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A bit-packed truth table over a fixed number of variables.
///
/// Bit `i` is the value of the function under the assignment where variable
/// `j` has value `(i >> j) & 1`.  Tables with fewer than 6 variables occupy a
/// single partially-used word whose unused high bits are kept zero.
///
/// ```
/// use truthtable::TruthTable;
///
/// let xor2 = TruthTable::from_hex(2, "6")?;
/// assert_eq!(xor2.get_bit(0), false);
/// assert_eq!(xor2.get_bit(1), true);
/// assert_eq!(xor2.to_hex(), "6");
/// # Ok::<(), truthtable::ParseTruthTableError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

/// Error returned when parsing a truth table from a hex or binary string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTruthTableError {
    message: String,
}

impl ParseTruthTableError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseTruthTableError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid truth table: {}", self.message)
    }
}

impl Error for ParseTruthTableError {}

pub(crate) fn words_needed(num_vars: usize) -> usize {
    if num_vars < 6 {
        1
    } else {
        1usize << (num_vars - 6)
    }
}

pub(crate) fn used_bits_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << num_vars)) - 1
    }
}

impl TruthTable {
    /// Maximum supported number of variables (2³² bits would be 512 MiB; the
    /// practical ceiling for exhaustive simulation windows is far lower).
    pub const MAX_VARS: usize = 24;

    /// Creates the constant-zero function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > Self::MAX_VARS`.
    pub fn zeros(num_vars: usize) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "too many truth table variables");
        TruthTable {
            num_vars,
            words: vec![0; words_needed(num_vars)],
        }
    }

    /// Creates the constant-one function over `num_vars` variables.
    pub fn ones(num_vars: usize) -> Self {
        let mut t = Self::zeros(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_unused();
        t
    }

    /// Creates the projection function of variable `var` over `num_vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn variable(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable index out of range");
        let mut t = Self::zeros(num_vars);
        if var < 6 {
            // Repeating pattern within each word.
            let pattern = match var {
                0 => 0xAAAA_AAAA_AAAA_AAAA,
                1 => 0xCCCC_CCCC_CCCC_CCCC,
                2 => 0xF0F0_F0F0_F0F0_F0F0,
                3 => 0xFF00_FF00_FF00_FF00,
                4 => 0xFFFF_0000_FFFF_0000,
                _ => 0xFFFF_FFFF_0000_0000,
            };
            for w in &mut t.words {
                *w = pattern;
            }
        } else {
            // Whole words alternate in blocks of 2^(var-6).
            let block = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / block) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.mask_unused();
        t
    }

    /// Builds a table from raw words (little-endian bit order).  Extra bits
    /// beyond `2^num_vars` are masked off; missing words are zero-filled.
    pub fn from_words(num_vars: usize, words: &[u64]) -> Self {
        let mut t = Self::zeros(num_vars);
        for (dst, src) in t.words.iter_mut().zip(words.iter()) {
            *dst = *src;
        }
        t.mask_unused();
        t
    }

    /// Builds a table by evaluating `f` on every assignment.  Argument `i` of
    /// the slice passed to `f` is the value of variable `i`.
    pub fn from_fn<F: FnMut(&[bool]) -> bool>(num_vars: usize, mut f: F) -> Self {
        let mut t = Self::zeros(num_vars);
        let mut assignment = vec![false; num_vars];
        for i in 0..(1usize << num_vars) {
            for (j, slot) in assignment.iter_mut().enumerate() {
                *slot = (i >> j) & 1 == 1;
            }
            if f(&assignment) {
                t.set_bit(i, true);
            }
        }
        t
    }

    /// Parses a hexadecimal string (most-significant nibble first, as printed
    /// by [`TruthTable::to_hex`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the string length does not match `2^num_vars / 4`
    /// (minimum one digit) or contains non-hex characters.
    pub fn from_hex(num_vars: usize, hex: &str) -> Result<Self, ParseTruthTableError> {
        let bits = 1usize << num_vars;
        let expected_digits = (bits / 4).max(1);
        if hex.len() != expected_digits {
            return Err(ParseTruthTableError::new(format!(
                "expected {expected_digits} hex digits for {num_vars} variables, got {}",
                hex.len()
            )));
        }
        let mut t = Self::zeros(num_vars);
        for (pos, ch) in hex.chars().rev().enumerate() {
            let value = ch
                .to_digit(16)
                .ok_or_else(|| ParseTruthTableError::new(format!("invalid hex digit '{ch}'")))?
                as u64;
            let bit_base = pos * 4;
            if bit_base >= bits && value != 0 {
                return Err(ParseTruthTableError::new("digit beyond table width"));
            }
            for b in 0..4 {
                if bit_base + b < bits && (value >> b) & 1 == 1 {
                    t.set_bit(bit_base + b, true);
                }
            }
        }
        Ok(t)
    }

    /// Parses a binary string written most-significant bit first (the
    /// convention of the paper's Fig. 1, e.g. `"0111"` is 2-input NAND).
    ///
    /// # Errors
    ///
    /// Returns an error if the length is not `2^num_vars` or the string
    /// contains characters other than `0`/`1`.
    pub fn from_binary_str(num_vars: usize, bits: &str) -> Result<Self, ParseTruthTableError> {
        let expected = 1usize << num_vars;
        if bits.len() != expected {
            return Err(ParseTruthTableError::new(format!(
                "expected {expected} binary digits, got {}",
                bits.len()
            )));
        }
        let mut t = Self::zeros(num_vars);
        for (pos, ch) in bits.chars().rev().enumerate() {
            match ch {
                '0' => {}
                '1' => t.set_bit(pos, true),
                _ => {
                    return Err(ParseTruthTableError::new(format!(
                        "invalid binary digit '{ch}'"
                    )))
                }
            }
        }
        Ok(t)
    }

    /// Renders the table as a hexadecimal string, most-significant nibble
    /// first.
    pub fn to_hex(&self) -> String {
        let bits = self.num_bits();
        let digits = (bits / 4).max(1);
        let mut out = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let mut nibble = 0u64;
            for b in 0..4 {
                let bit = d * 4 + b;
                if bit < bits && self.get_bit(bit) {
                    nibble |= 1 << b;
                }
            }
            out.push(char::from_digit(nibble as u32, 16).expect("nibble is < 16"));
        }
        out
    }

    /// Renders the table as a binary string, most-significant bit first.
    pub fn to_binary_string(&self) -> String {
        (0..self.num_bits())
            .rev()
            .map(|i| if self.get_bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of bits, `2^num_vars`.
    pub fn num_bits(&self) -> usize {
        1usize << self.num_vars
    }

    /// The packed words backing the table.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn get_bit(&self, index: usize) -> bool {
        assert!(index < self.num_bits(), "truth table bit out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.num_bits(), "truth table bit out of range");
        if value {
            self.words[index / 64] |= 1 << (index % 64);
        } else {
            self.words[index / 64] &= !(1 << (index % 64));
        }
    }

    /// Evaluates the function for the given variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the number of variables.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length must equal the number of variables"
        );
        let mut index = 0usize;
        for (j, &v) in assignment.iter().enumerate() {
            if v {
                index |= 1 << j;
            }
        }
        self.get_bit(index)
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the function is the constant zero.
    pub fn is_const0(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if the function is the constant one.
    pub fn is_const1(&self) -> bool {
        self.count_ones() == self.num_bits()
    }

    /// The positive cofactor with respect to `var` (the function with `var`
    /// fixed to 1), still expressed over the same variable set.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn cofactor1(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars, "variable index out of range");
        let mut out = self.clone();
        for i in 0..self.num_bits() {
            let partner = i | (1 << var);
            let value = self.get_bit(partner);
            out.set_bit(i, value);
        }
        out
    }

    /// The negative cofactor with respect to `var` (the function with `var`
    /// fixed to 0).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn cofactor0(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars, "variable index out of range");
        let mut out = self.clone();
        for i in 0..self.num_bits() {
            let partner = i & !(1 << var);
            let value = self.get_bit(partner);
            out.set_bit(i, value);
        }
        out
    }

    /// `true` if the function depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// Iterator over the indices of variables in the functional support.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_vars).filter(move |&v| self.depends_on(v))
    }

    /// Re-expresses the table over a larger variable set, mapping variable
    /// `i` of `self` to `var_map[i]` of the new table.
    ///
    /// # Panics
    ///
    /// Panics if `var_map` is shorter than the current variable count, if any
    /// target index is `>= new_num_vars`, or if targets repeat.
    #[must_use]
    pub fn extend_to(&self, new_num_vars: usize, var_map: &[usize]) -> TruthTable {
        assert!(var_map.len() >= self.num_vars, "variable map too short");
        let map = &var_map[..self.num_vars];
        assert!(
            map.iter().all(|&v| v < new_num_vars),
            "variable map target out of range"
        );
        let mut out = TruthTable::zeros(new_num_vars);
        for i in 0..(1usize << new_num_vars) {
            // Gather the bits of the original variables directly from the
            // wide minterm index (no per-minterm allocation).
            let mut local = 0usize;
            for (j, &v) in map.iter().enumerate() {
                local |= ((i >> v) & 1) << j;
            }
            if self.get_bit(local) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// The toggle rate of the table viewed as a simulation signature: the
    /// fraction of adjacent bit positions whose values differ (Section IV-A,
    /// footnote 1 of the paper).
    pub fn toggle_rate(&self) -> f64 {
        let bits = self.num_bits();
        if bits < 2 {
            return 0.0;
        }
        let mut toggles = 0usize;
        let mut prev = self.get_bit(0);
        for i in 1..bits {
            let cur = self.get_bit(i);
            if cur != prev {
                toggles += 1;
            }
            prev = cur;
        }
        toggles as f64 / (bits - 1) as f64
    }

    pub(crate) fn mask_unused(&mut self) {
        let mask = used_bits_mask(self.num_vars);
        if self.num_vars < 6 {
            self.words[0] &= mask;
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x{})", self.num_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl FromStr for TruthTable {
    type Err = ParseTruthTableError;

    /// Parses a hex string, inferring the variable count from the digit
    /// count (1 digit → 2 vars, 2 digits → 3 vars, 4 digits → 4 vars, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.len();
        if digits == 0 {
            return Err(ParseTruthTableError::new("empty string"));
        }
        let bits = digits * 4;
        if !bits.is_power_of_two() {
            return Err(ParseTruthTableError::new(
                "hex digit count must be a power of two",
            ));
        }
        let num_vars = bits.trailing_zeros() as usize;
        TruthTable::from_hex(num_vars, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let zero = TruthTable::zeros(4);
        let one = TruthTable::ones(4);
        assert!(zero.is_const0());
        assert!(one.is_const1());
        assert_eq!(one.count_ones(), 16);
    }

    #[test]
    fn variables_have_expected_patterns() {
        let v0 = TruthTable::variable(3, 0);
        assert_eq!(v0.to_hex(), "aa");
        let v1 = TruthTable::variable(3, 1);
        assert_eq!(v1.to_hex(), "cc");
        let v2 = TruthTable::variable(3, 2);
        assert_eq!(v2.to_hex(), "f0");
    }

    #[test]
    fn variable_beyond_word_boundary() {
        let v6 = TruthTable::variable(7, 6);
        assert!(!v6.get_bit(0));
        assert!(v6.get_bit(64));
        assert!(!v6.get_bit(63));
        assert!(v6.get_bit(127));
        let v7 = TruthTable::variable(8, 7);
        assert!(!v7.get_bit(127));
        assert!(v7.get_bit(128));
    }

    #[test]
    fn hex_round_trip() {
        let t = TruthTable::from_hex(3, "e8").unwrap();
        assert_eq!(t.to_hex(), "e8");
        assert_eq!(t.count_ones(), 4); // maj3
        let parsed: TruthTable = "e8".parse().unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn hex_errors() {
        assert!(TruthTable::from_hex(3, "e").is_err());
        assert!(TruthTable::from_hex(2, "g").is_err());
        assert!("".parse::<TruthTable>().is_err());
        assert!("abc".parse::<TruthTable>().is_err());
    }

    #[test]
    fn binary_string_nand_example() {
        // Fig. 1 of the paper: TT "0111" is 2-input NAND (inputs 11 -> 0).
        let nand = TruthTable::from_binary_str(2, "0111").unwrap();
        assert!(!nand.evaluate(&[true, true]));
        assert!(nand.evaluate(&[false, true]));
        assert!(nand.evaluate(&[true, false]));
        assert!(nand.evaluate(&[false, false]));
        assert_eq!(nand.to_binary_string(), "0111");
    }

    #[test]
    fn evaluate_matches_bits() {
        let t = TruthTable::from_hex(2, "8").unwrap(); // AND
        assert!(t.evaluate(&[true, true]));
        assert!(!t.evaluate(&[true, false]));
        assert!(!t.evaluate(&[false, true]));
        assert!(!t.evaluate(&[false, false]));
    }

    #[test]
    fn cofactors_and_support() {
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let f = &a & &b; // depends on 0 and 1 only
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(!f.depends_on(2));
        assert_eq!(f.support().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(f.cofactor1(0), b);
        assert!(f.cofactor0(0).is_const0());
    }

    #[test]
    fn extend_to_remaps_variables() {
        let xor2 = TruthTable::from_hex(2, "6").unwrap();
        let widened = xor2.extend_to(4, &[3, 1]);
        for i in 0..16usize {
            let args: Vec<bool> = (0..4).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(widened.evaluate(&args), args[3] ^ args[1]);
        }
    }

    #[test]
    fn toggle_rate_extremes() {
        assert_eq!(TruthTable::zeros(4).toggle_rate(), 0.0);
        let alternating = TruthTable::variable(4, 0);
        assert!(alternating.toggle_rate() > 0.99);
    }

    #[test]
    fn from_fn_matches_evaluate() {
        let f = TruthTable::from_fn(3, |a| (a[0] && a[1]) || a[2]);
        for i in 0..8usize {
            let args: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(f.evaluate(&args), (args[0] && args[1]) || args[2]);
        }
    }
}
