//! NPN canonicalisation of truth tables over at most four variables.
//!
//! Two Boolean functions are *NPN-equivalent* when one can be obtained from
//! the other by negating inputs (N), permuting inputs (P) and negating the
//! output (N).  Over four variables there are `2 × 4! × 2⁴ = 768` such
//! transforms, partitioning the 65 536 functions into 222 equivalence
//! classes.  Cut rewriting exploits this: one replacement network per
//! *class* serves every cut function in the class, with the transform
//! telling the rewriter how to permute/complement the cut leaves and the
//! output.
//!
//! Functions are represented as bit-packed `u16` tables (bit `i` is the
//! function value where variable `j` takes `(i >> j) & 1`, the same
//! convention as [`crate::TruthTable`]); functions of fewer than four
//! variables are padded by replication ([`from_table`]).
//!
//! ```
//! use truthtable::npn;
//!
//! let f = 0x8000u16; // x0 & x1 & x2 & x3
//! let (cf, t) = npn::canonicalize4(f);
//! // Applying the found transform maps the function onto its canonical form,
//! // and the inverse transform maps it back.
//! assert_eq!(npn::apply4(f, &t), cf);
//! assert_eq!(npn::apply4(cf, &t.inverse()), f);
//! ```

use crate::TruthTable;

/// An invertible NPN transform over four variables.
///
/// Applying the transform to a function `f` yields `g` with
/// `g(x₀..x₃) = f(y₀..y₃) ⊕ output_neg` where
/// `yⱼ = x_{perm[j]} ⊕ input_neg[j]` — variable `j` of `f` reads slot
/// `perm[j]` of `g`'s inputs, complemented when bit `j` of `input_neg`
/// is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[j]` is the input slot variable `j` of the transformed function
    /// reads from.
    pub perm: [u8; 4],
    /// Bit `j` set complements variable `j` after permutation.
    pub input_neg: u8,
    /// Complements the output.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub fn identity() -> Self {
        NpnTransform {
            perm: [0, 1, 2, 3],
            input_neg: 0,
            output_neg: false,
        }
    }

    /// The inverse transform: `apply4(apply4(f, t), t.inverse()) == f`.
    pub fn inverse(&self) -> Self {
        let mut perm = [0u8; 4];
        let mut input_neg = 0u8;
        for j in 0..4 {
            let target = self.perm[j] as usize;
            perm[target] = j as u8;
            input_neg |= ((self.input_neg >> j) & 1) << target;
        }
        NpnTransform {
            perm,
            input_neg,
            output_neg: self.output_neg,
        }
    }
}

/// The 24 permutations of four elements, in lexicographic order (the
/// deterministic iteration order of [`canonicalize4`]).
const PERMS4: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Applies `t` to the 4-variable function `tt`.
pub fn apply4(tt: u16, t: &NpnTransform) -> u16 {
    let mut out = 0u16;
    for i in 0..16u32 {
        let mut k = 0u32;
        for j in 0..4 {
            let bit = ((i >> t.perm[j]) & 1) ^ (((t.input_neg >> j) & 1) as u32);
            k |= bit << j;
        }
        let mut v = (tt >> k) & 1;
        if t.output_neg {
            v ^= 1;
        }
        out |= v << i;
    }
    out
}

/// Canonicalises a 4-variable function under NPN equivalence.
///
/// Returns the lexicographically smallest table reachable by any of the 768
/// transforms, together with a transform `t` such that
/// `apply4(tt, t)` equals the canonical table (and therefore
/// `apply4(canonical, t.inverse()) == tt`).  Ties between transforms are
/// broken by a fixed iteration order, so the returned transform is a pure
/// function of `tt`.
pub fn canonicalize4(tt: u16) -> (u16, NpnTransform) {
    let mut best = tt;
    let mut best_t = NpnTransform::identity();
    let mut first = true;
    for output_neg in [false, true] {
        for input_neg in 0u8..16 {
            for perm in PERMS4 {
                let t = NpnTransform {
                    perm,
                    input_neg,
                    output_neg,
                };
                let candidate = apply4(tt, &t);
                if first || candidate < best {
                    best = candidate;
                    best_t = t;
                    first = false;
                }
            }
        }
    }
    (best, best_t)
}

/// Packs a truth table of at most four variables into a 4-variable `u16`
/// table, padding missing variables by replication (the padded function
/// ignores them).  Returns `None` for tables of more than four variables.
pub fn from_table(tt: &TruthTable) -> Option<u16> {
    let nv = tt.num_vars();
    if nv > 4 {
        return None;
    }
    let mask = (1usize << nv) - 1;
    let mut out = 0u16;
    for i in 0..16usize {
        if tt.get_bit(i & mask) {
            out |= 1 << i;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seedable xorshift so the round-trip tests cover a spread of tables
    /// without depending on an external RNG.
    fn xorshift(state: &mut u32) -> u16 {
        *state ^= *state << 13;
        *state ^= *state >> 17;
        *state ^= *state << 5;
        (*state & 0xFFFF) as u16
    }

    #[test]
    fn identity_transform_is_identity() {
        let t = NpnTransform::identity();
        for tt in [0x0000u16, 0xFFFF, 0x8000, 0x6996, 0xCAFE] {
            assert_eq!(apply4(tt, &t), tt);
        }
        assert_eq!(t.inverse(), t);
    }

    #[test]
    fn inverse_round_trips_random_transforms() {
        let mut state = 0xBEEFu32;
        for perm in PERMS4 {
            for _ in 0..4 {
                let t = NpnTransform {
                    perm,
                    input_neg: (xorshift(&mut state) & 0xF) as u8,
                    output_neg: xorshift(&mut state) & 1 == 1,
                };
                let tt = xorshift(&mut state);
                assert_eq!(apply4(apply4(tt, &t), &t.inverse()), tt, "{t:?}");
                assert_eq!(apply4(apply4(tt, &t.inverse()), &t), tt, "{t:?}");
            }
        }
    }

    #[test]
    fn canonicalize_round_trips() {
        let mut state = 0x1234u32;
        for _ in 0..500 {
            let tt = xorshift(&mut state);
            let (canon, t) = canonicalize4(tt);
            assert_eq!(apply4(tt, &t), canon);
            assert_eq!(apply4(canon, &t.inverse()), tt);
            // The canonical form is a class invariant: canonicalising the
            // canonical form must be a fixpoint.
            let (canon2, _) = canonicalize4(canon);
            assert_eq!(canon2, canon);
        }
    }

    #[test]
    fn npn_equivalent_functions_share_a_canonical_form() {
        // AND(x0, x1) vs NOR(x0, x1): inputs negated, output kept.
        let and = from_table(&TruthTable::from_fn(2, |a| a[0] && a[1])).unwrap();
        let nor = from_table(&TruthTable::from_fn(2, |a| !(a[0] || a[1]))).unwrap();
        assert_eq!(canonicalize4(and).0, canonicalize4(nor).0);
        // XOR is NPN-equivalent to XNOR.
        let xor = from_table(&TruthTable::from_fn(2, |a| a[0] ^ a[1])).unwrap();
        let xnor = from_table(&TruthTable::from_fn(2, |a| !(a[0] ^ a[1]))).unwrap();
        assert_eq!(canonicalize4(xor).0, canonicalize4(xnor).0);
        // AND is not NPN-equivalent to XOR.
        assert_ne!(canonicalize4(and).0, canonicalize4(xor).0);
    }

    #[test]
    fn four_variable_functions_fall_into_222_classes() {
        // The classic count of NPN classes of 4-variable functions, checked
        // exhaustively by flood-filling orbits under the group generators
        // (input flips, adjacent swaps, output flip).  Canonicalising every
        // one of the 65 536 functions would be ~50 k transform applications
        // each; the orbit walk covers the same ground in a few million.
        let mut generators: Vec<NpnTransform> = Vec::new();
        for j in 0..4u8 {
            generators.push(NpnTransform {
                perm: [0, 1, 2, 3],
                input_neg: 1 << j,
                output_neg: false,
            });
        }
        for j in 0..3usize {
            let mut perm = [0u8, 1, 2, 3];
            perm.swap(j, j + 1);
            generators.push(NpnTransform {
                perm,
                input_neg: 0,
                output_neg: false,
            });
        }
        generators.push(NpnTransform {
            perm: [0, 1, 2, 3],
            input_neg: 0,
            output_neg: true,
        });

        let mut seen = vec![false; 1 << 16];
        let mut orbits = 0usize;
        for seed in 0..=u16::MAX {
            if seen[seed as usize] {
                continue;
            }
            orbits += 1;
            // Every member of the orbit must canonicalise to the seed's
            // canonical form — the canonical form is a class invariant.
            let canon = canonicalize4(seed).0;
            let mut stack = vec![seed];
            let mut last = seed;
            seen[seed as usize] = true;
            while let Some(tt) = stack.pop() {
                last = tt;
                for g in &generators {
                    let next = apply4(tt, g);
                    if !seen[next as usize] {
                        seen[next as usize] = true;
                        stack.push(next);
                    }
                }
            }
            assert_eq!(canonicalize4(last).0, canon, "orbit of {seed:#06x}");
        }
        assert_eq!(orbits, 222);
    }

    #[test]
    fn padding_replicates_small_tables() {
        let xor2 = TruthTable::from_fn(2, |a| a[0] ^ a[1]);
        let padded = from_table(&xor2).unwrap();
        assert_eq!(padded, 0x6666);
        assert!(from_table(&TruthTable::zeros(5)).is_none());
        assert_eq!(from_table(&TruthTable::ones(0)), Some(0xFFFF));
    }
}
