//! Property-based tests of the truth-table package.

use proptest::prelude::*;
use truthtable::{compose, TruthTable};

fn arb_table(num_vars: usize) -> impl Strategy<Value = TruthTable> {
    let words = (1usize << num_vars).div_ceil(64).max(1);
    proptest::collection::vec(any::<u64>(), words)
        .prop_map(move |w| TruthTable::from_words(num_vars, &w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Boolean algebra laws hold bitwise.
    #[test]
    fn de_morgan_and_involution(a in arb_table(5), b in arb_table(5)) {
        prop_assert_eq!(!&(&a & &b), &(!&a) | &(!&b));
        prop_assert_eq!(!&(!&a), a.clone());
        prop_assert_eq!(&a ^ &b, &(&a | &b) & &(!&(&a & &b)));
    }

    /// Hex serialisation round trips.
    #[test]
    fn hex_round_trip(t in arb_table(6)) {
        let hex = t.to_hex();
        let parsed = TruthTable::from_hex(6, &hex).expect("valid hex");
        prop_assert_eq!(parsed, t);
    }

    /// Binary-string serialisation round trips.
    #[test]
    fn binary_round_trip(t in arb_table(4)) {
        let s = t.to_binary_string();
        let parsed = TruthTable::from_binary_str(4, &s).expect("valid binary");
        prop_assert_eq!(parsed, t);
    }

    /// Shannon expansion: f = (x & f|x=1) | (!x & f|x=0).
    #[test]
    fn shannon_expansion(t in arb_table(5), var in 0usize..5) {
        let x = TruthTable::variable(5, var);
        let hi = t.cofactor1(var);
        let lo = t.cofactor0(var);
        let rebuilt = &(&x & &hi) | &(&(!&x) & &lo);
        prop_assert_eq!(rebuilt, t);
    }

    /// Cofactors remove the variable from the support.
    #[test]
    fn cofactors_remove_dependence(t in arb_table(4), var in 0usize..4) {
        prop_assert!(!t.cofactor0(var).depends_on(var));
        prop_assert!(!t.cofactor1(var).depends_on(var));
    }

    /// `evaluate` agrees with `get_bit` under the variable-0-is-LSB
    /// convention.
    #[test]
    fn evaluate_matches_bits(t in arb_table(4), index in 0usize..16) {
        let assignment: Vec<bool> = (0..4).map(|j| (index >> j) & 1 == 1).collect();
        prop_assert_eq!(t.evaluate(&assignment), t.get_bit(index));
    }

    /// Composition with projection functions is variable remapping.
    #[test]
    fn compose_with_projections_is_identity(t in arb_table(3)) {
        let projections: Vec<TruthTable> =
            (0..3).map(|i| TruthTable::variable(3, i)).collect();
        prop_assert_eq!(compose(&t, &projections), t);
    }

    /// Composition agrees with pointwise evaluation.
    #[test]
    fn compose_matches_pointwise(outer in arb_table(2), f in arb_table(3), g in arb_table(3)) {
        let composed = compose(&outer, &[f.clone(), g.clone()]);
        for i in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|j| (i >> j) & 1 == 1).collect();
            let expected = outer.evaluate(&[f.evaluate(&assignment), g.evaluate(&assignment)]);
            prop_assert_eq!(composed.evaluate(&assignment), expected);
        }
    }

    /// Extending to a superset of variables preserves the function.
    #[test]
    fn extend_to_preserves_function(t in arb_table(3)) {
        let widened = t.extend_to(5, &[4, 0, 2]);
        for i in 0..32usize {
            let assignment: Vec<bool> = (0..5).map(|j| (i >> j) & 1 == 1).collect();
            let local = [assignment[4], assignment[0], assignment[2]];
            prop_assert_eq!(widened.evaluate(&assignment), t.evaluate(&local));
        }
    }

    /// Counting ones is consistent with complementation.
    #[test]
    fn count_ones_complement(t in arb_table(6)) {
        prop_assert_eq!(t.count_ones() + (!&t).count_ones(), t.num_bits());
    }
}
