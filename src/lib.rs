//! # stp-sat-sweep — facade crate
//!
//! Re-exports every crate of the workspace so that examples, integration
//! tests and downstream users can depend on a single package.
//!
//! The workspace reproduces *"A Semi-Tensor Product based Circuit Simulation
//! for SAT-sweeping"* (DATE 2024). See the repository `README.md` for the
//! architecture overview and the crate-dependency diagram.
//!
//! ```
//! use stp_sat_sweep::netlist::Aig;
//! use stp_sat_sweep::bitsim::PatternSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let g = aig.and(a, b);
//! aig.add_output("y", g);
//! let patterns = PatternSet::exhaustive(2);
//! assert_eq!(patterns.num_patterns(), 4);
//! # Ok(())
//! # }
//! ```

pub use bitsim;
pub use netlist;
pub use satsolver;
pub use stp;
pub use stp_sweep;
pub use truthtable;
pub use workloads;
