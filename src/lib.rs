//! # stp-sat-sweep — facade crate
//!
//! Re-exports every crate of the workspace so that examples, integration
//! tests and downstream users can depend on a single package.
//!
//! The workspace reproduces *"A Semi-Tensor Product based Circuit Simulation
//! for SAT-sweeping"* (DATE 2024). See the repository `README.md` for the
//! architecture overview and the crate-dependency diagram.
//!
//! The sweeping entry point is the [`Sweeper`] builder (re-exported at the
//! facade root alongside the rest of the session API):
//!
//! ```
//! use stp_sat_sweep::netlist::Aig;
//! use stp_sat_sweep::{Engine, SweepConfig, Sweeper};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//! let g = aig.and(f, b); // redundant: equals f
//! let y = aig.xor(f, g);
//! aig.add_output("y", y);
//!
//! let result = Sweeper::new(Engine::Stp).config(SweepConfig::fast()).run(&aig)?;
//! assert!(result.aig.num_ands() <= aig.num_ands());
//! # Ok(())
//! # }
//! ```
//!
//! Multi-pass flows (rewrite → strash → sweep → verify) compose through
//! the [`PassManager`] (aliased [`Pipeline`]) — programmatically via its
//! builder verbs or from a textual script via [`PassManager::parse`] —
//! with runs bounded by [`Budget`] and observed through [`Observer`]; see
//! the `stp_sweep` crate docs.  The legacy free functions
//! (`stp_sweep::sweeper::sweep_stp` and friends) remain as deprecated thin
//! wrappers.
//!
//! Long-running multi-job deployments use the [`sweepd`] service instead of
//! driving sessions by hand: a daemon that fair-slices concurrent sweeps
//! over checkpoints, with priorities, preemption and crash recovery (see
//! `examples/sweep_service.rs` and the `README.md` "Sweep service" section).

pub use bitsim;
pub use netlist;
pub use satsolver;
pub use stp;
pub use stp_sweep;
pub use sweepd;
pub use truthtable;
pub use workloads;

pub use netlist::canonical_fingerprint;
pub use stp_sweep::{
    bmc_sec, netlist_fingerprint, BatchPolicy, Budget, BudgetCause, CancelToken, CheckpointError,
    Engine, NoopObserver, Observer, ParsePassError, Pass, PassCtx, PassManager, PassReport,
    Pipeline, PipelineResult, SatCallOutcome, SecResult, StatsObserver, SweepCheckpoint,
    SweepConfig, SweepError, SweepReport, SweepResult, SweepSession, Sweeper,
};
