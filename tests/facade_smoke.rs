//! Facade smoke test: exercises the full pipeline — netlist construction,
//! bitwise simulation, STP simulation of the LUT mapping, SAT solving inside
//! the sweeper, and CEC verification — entirely through the `stp_sat_sweep`
//! facade re-exports, exactly as a downstream user would.

use stp_sat_sweep::bitsim::{AigSimulator, PatternSet};
use stp_sat_sweep::netlist::{lutmap, Aig};
use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::stp_sweep::stp_sim::StpSimulator;
use stp_sat_sweep::{Engine, StatsObserver, SweepConfig, Sweeper};

/// A 4-input circuit with a hand-planted redundancy: `g = a & b` computed
/// twice through structurally different cones, XORed into the output so a
/// sweep that merges them can simplify the network.
fn redundant_circuit() -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    // f1 = a & b, directly.
    let f1 = aig.and(a, b);
    // f2 = (a & (b | d)) & (a & b | !d) — equivalent to a & b.
    let b_or_d = aig.or(b, d);
    let t1 = aig.and(a, b_or_d);
    let ab = aig.and(a, b);
    let t2 = aig.or(ab, !d);
    let f2 = aig.and(t1, t2);
    let x = aig.xor(f1, f2); // constant false when f1 == f2
    let y = aig.or(x, c);
    aig.add_output("y", y);
    aig.add_output("x", x);
    aig
}

#[test]
fn full_pipeline_round_trip_through_facade() {
    let aig = redundant_circuit();

    // Layer 1: bitwise simulation of the AIG (netlist -> bitsim).
    let patterns = PatternSet::exhaustive(aig.num_inputs());
    let bit_state = AigSimulator::new(&aig).run(&patterns);

    // Layer 2: LUT mapping + STP simulation agree with the bitwise baseline
    // (netlist -> stp -> stp_sim).
    let lut = lutmap::map_to_luts(&aig, 4);
    let stp_state = StpSimulator::new(&lut).simulate_all(&patterns);
    for o in 0..aig.num_outputs() {
        assert_eq!(
            bit_state.output_signature(&aig, o),
            stp_state.output_signature(&lut, o),
            "bitwise and STP simulation disagree on output {o}"
        );
    }

    // Layer 3: the STP sweeper (satsolver + sweeper) merges the planted
    // redundancy. Output x is constant false, so the sweep must shrink the
    // network.
    let mut stats = StatsObserver::new();
    let result = Sweeper::new(Engine::Stp)
        .config(SweepConfig::default())
        .observer(&mut stats)
        .run(&aig)
        .expect("valid config");
    assert!(
        result.aig.num_ands() < aig.num_ands(),
        "sweep failed to remove the planted redundancy: {} -> {} ANDs",
        aig.num_ands(),
        result.aig.num_ands()
    );

    // Layer 4: CEC verifies the sweep end-to-end.
    let check = cec::check_equivalence(&aig, &result.aig, 100_000);
    assert!(check.equivalent, "sweep changed the circuit function");

    // The report is consistent with the structural outcome.
    assert_eq!(result.report.gates_before, aig.num_ands());
    assert_eq!(result.report.gates_after, result.aig.num_ands());

    // Layer 5: the observer attached through the facade saw the same counts
    // the report was derived from.
    assert_eq!(stats.merges, result.report.merges);
    assert_eq!(stats.constants, result.report.constants);
    assert_eq!(stats.sat_calls_total(), result.report.sat_calls_total);
}
