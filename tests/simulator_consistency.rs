//! Cross-simulator consistency: the word-parallel AIG simulator, the
//! per-pattern k-LUT baseline and the STP simulator (all-nodes and
//! specified-nodes modes) must agree on every output for every workload.

use stp_sat_sweep::bitsim::{AigSimulator, LutSimulator, PatternSet};
use stp_sat_sweep::netlist::lutmap;
use stp_sat_sweep::stp_sweep::stp_sim::StpSimulator;
use stp_sat_sweep::stp_sweep::window::WindowIndex;
use stp_sat_sweep::workloads::{epfl_suite, generators, Scale};

#[test]
fn all_three_simulators_agree_on_the_epfl_suite() {
    for bench in epfl_suite(Scale::Tiny) {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), 128, 0xAB).unwrap();
        let aig_state = AigSimulator::new(aig).run(&patterns);
        for k in [4, 6] {
            let lut = lutmap::map_to_luts(aig, k);
            let lut_state = LutSimulator::new(&lut).run(&patterns);
            let stp_state = StpSimulator::new(&lut).simulate_all(&patterns);
            for o in 0..aig.num_outputs() {
                let reference = aig_state.output_signature(aig, o);
                assert_eq!(
                    reference,
                    lut_state.output_signature(&lut, o),
                    "{}: bitwise LUT simulation differs on output {o} (k={k})",
                    bench.name
                );
                assert_eq!(
                    reference,
                    stp_state.output_signature(&lut, o),
                    "{}: STP simulation differs on output {o} (k={k})",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn parallel_simulators_are_bit_identical_on_the_epfl_suite() {
    for bench in epfl_suite(Scale::Tiny) {
        let aig = &bench.aig;
        let patterns = PatternSet::random(aig.num_inputs(), 2048, 0xAB).unwrap();
        let aig_sim = AigSimulator::new(aig);
        let sequential = aig_sim.run(&patterns);
        let lut = lutmap::map_to_luts(aig, 6);
        let stp = StpSimulator::new(&lut);
        let stp_sequential = stp.simulate_all(&patterns);
        for threads in [2usize, 4] {
            let parallel = aig_sim.run_parallel(&patterns, threads);
            for id in aig.node_ids() {
                assert_eq!(
                    parallel.signature(id),
                    sequential.signature(id),
                    "{}: AIG node {id}, {threads} threads",
                    bench.name
                );
            }
            let stp_parallel = stp.simulate_all_parallel(&patterns, threads);
            for id in lut.node_ids() {
                assert_eq!(
                    stp_parallel.signature(id),
                    stp_sequential.signature(id),
                    "{}: LUT node {id}, {threads} threads",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn specified_node_simulation_agrees_with_full_simulation() {
    let aig = generators::array_multiplier(4);
    let lut = lutmap::map_to_luts(&aig, 6);
    let patterns = PatternSet::random(aig.num_inputs(), 200, 0x5EED).unwrap();
    let sim = StpSimulator::new(&lut);
    let all = sim.simulate_all(&patterns);
    let targets: Vec<_> = lut.lut_ids().collect();
    // Simulate in several small target batches, as the sweeper does.
    for chunk in targets.chunks(3) {
        let result = sim.simulate_nodes(&patterns, chunk);
        for &t in chunk {
            assert_eq!(result[&t], all.signature(t), "node {t}");
        }
    }
}

#[test]
fn window_simulation_agrees_with_bitwise_simulation() {
    let circuits = vec![
        generators::restoring_divider(4),
        generators::majority_voter(9),
        generators::random_control(10, 150, 8, 5),
    ];
    for aig in circuits {
        let patterns = PatternSet::random(aig.num_inputs(), 96, 7).unwrap();
        let reference = AigSimulator::new(&aig).run(&patterns);
        let index = WindowIndex::build(&aig, 10);
        let targets: Vec<_> = aig.and_ids().collect();
        let windowed = index.simulate_targets(&aig, &patterns, &targets);
        for &t in &targets {
            assert_eq!(windowed[&t], reference.signature(t), "node {t}");
        }
    }
}

#[test]
fn exhaustive_and_random_simulation_agree_on_small_circuits() {
    let aig = generators::restoring_sqrt(3);
    let exhaustive = PatternSet::exhaustive(aig.num_inputs());
    let state = AigSimulator::new(&aig).run(&exhaustive);
    for p in 0..exhaustive.num_patterns() {
        let assignment = exhaustive.assignment(p);
        let reference = aig.evaluate(&assignment);
        for (o, &expected) in reference.iter().enumerate() {
            assert_eq!(
                state.output_signature(&aig, o).get_bit(p),
                expected,
                "pattern {p}, output {o}"
            );
        }
    }
}
