//! End-to-end integration tests spanning all crates: workload generation →
//! redundancy injection → sweeping (both engines) → CEC verification, plus
//! AIGER round trips of generated circuits.

use stp_sat_sweep::netlist::{read_aiger_str, write_aiger_string};
use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::workloads::{epfl_suite, generators, hwmcc_suite, inject_redundancy, Scale};
use stp_sat_sweep::{Budget, Engine, StatsObserver, SweepConfig, SweepError, Sweeper};

fn sweep_stp(
    aig: &stp_sat_sweep::netlist::Aig,
    config: &SweepConfig,
) -> stp_sat_sweep::SweepResult {
    Sweeper::new(Engine::Stp)
        .config(*config)
        .run(aig)
        .expect("valid config")
}

fn sweep_baseline(
    aig: &stp_sat_sweep::netlist::Aig,
    config: &SweepConfig,
) -> stp_sat_sweep::SweepResult {
    Sweeper::new(Engine::Baseline)
        .config(*config)
        .run(aig)
        .expect("valid config")
}

fn quick_config() -> SweepConfig {
    SweepConfig {
        num_initial_patterns: 64,
        conflict_limit: 50_000,
        ..SweepConfig::default()
    }
}

#[test]
fn stp_sweeping_recovers_injected_redundancy() {
    let base = generators::ripple_carry_adder(6);
    let redundant = inject_redundancy(&base, 0.5, 42);
    assert!(redundant.num_ands() > base.num_ands());

    let result = sweep_stp(&redundant, &quick_config());
    assert!(
        result.aig.num_ands() < redundant.num_ands(),
        "sweeping must remove part of the planted redundancy ({} -> {})",
        redundant.num_ands(),
        result.aig.num_ands()
    );
    assert!(cec::check_equivalence(&redundant, &result.aig, 500_000).equivalent);
}

#[test]
fn both_engines_produce_equivalent_results_on_control_logic() {
    let base = generators::random_control(12, 120, 8, 77);
    let redundant = inject_redundancy(&base, 0.4, 77);

    let baseline = sweep_baseline(
        &redundant,
        &SweepConfig {
            num_initial_patterns: 64,
            ..SweepConfig::baseline()
        },
    );
    let stp = sweep_stp(&redundant, &quick_config());

    assert!(cec::check_equivalence(&redundant, &baseline.aig, 500_000).equivalent);
    assert!(cec::check_equivalence(&redundant, &stp.aig, 500_000).equivalent);
    // Both engines also stay equivalent to the original, irredundant circuit.
    assert!(cec::check_equivalence(&base, &stp.aig, 500_000).equivalent);
}

#[test]
fn stp_engine_uses_no_more_satisfiable_calls_than_baseline() {
    let suite = hwmcc_suite(Scale::Tiny);
    let mut stp_total = 0u64;
    let mut baseline_total = 0u64;
    for bench in suite.iter().take(5) {
        let baseline = sweep_baseline(
            &bench.aig,
            &SweepConfig {
                num_initial_patterns: 64,
                ..SweepConfig::baseline()
            },
        );
        let stp = sweep_stp(&bench.aig, &quick_config());
        baseline_total += baseline.report.sat_calls_sat;
        stp_total += stp.report.sat_calls_sat;
    }
    assert!(
        stp_total <= baseline_total,
        "STP sweeping must reduce satisfiable SAT calls overall ({stp_total} vs {baseline_total})"
    );
}

#[test]
fn sweeping_never_grows_a_network() {
    for (idx, bench) in hwmcc_suite(Scale::Tiny).into_iter().enumerate() {
        if idx % 3 != 0 {
            continue; // keep the test fast; the bench harness covers all
        }
        let result = sweep_stp(&bench.aig, &quick_config());
        assert!(
            result.aig.num_ands() <= bench.aig.num_ands(),
            "{} grew from {} to {}",
            bench.name,
            bench.aig.num_ands(),
            result.aig.num_ands()
        );
    }
}

#[test]
fn aiger_round_trip_of_generated_circuits() {
    let circuits = vec![
        generators::barrel_shifter(8),
        generators::array_multiplier(3),
        generators::priority_encoder(8),
    ];
    for aig in circuits {
        let text = write_aiger_string(&aig);
        let parsed = read_aiger_str(&text).expect("round trip parses");
        assert!(cec::check_equivalence(&aig, &parsed, 200_000).equivalent);
    }
}

#[test]
fn swept_network_round_trips_through_aiger() {
    let base = generators::max_unit(6);
    let redundant = inject_redundancy(&base, 0.4, 3);
    let swept = sweep_stp(&redundant, &quick_config());
    let text = write_aiger_string(&swept.aig);
    let parsed = read_aiger_str(&text).expect("round trip parses");
    assert!(cec::check_equivalence(&base, &parsed, 500_000).equivalent);
}

#[test]
fn budget_limited_sweep_returns_equivalent_partial_result() {
    // Acceptance criterion of the session API: a budget-limited run on an
    // EPFL-analog workload hands back a partial result whose network still
    // passes CEC against the input, instead of discarding the work done.
    let bench = epfl_suite(Scale::Tiny)
        .into_iter()
        .max_by_key(|b| b.aig.num_ands())
        .expect("the suite is non-empty");
    let redundant = inject_redundancy(&bench.aig, 0.3, 9);

    let run = Sweeper::new(Engine::Stp)
        .config(quick_config())
        .budget(Budget::unlimited().with_max_sat_calls(2))
        .run(&redundant);
    let partial = match run {
        Err(SweepError::BudgetExhausted { partial, .. }) => *partial,
        Ok(full) => full, // tiny workloads may finish within the budget
        Err(other) => panic!("unexpected error: {other}"),
    };
    assert!(partial.aig.num_ands() <= redundant.num_ands());
    assert!(
        cec::check_equivalence(&redundant, &partial.aig, 500_000).equivalent,
        "a truncated sweep must still be functionally equivalent"
    );
}

#[test]
fn budget_exhaustion_mid_parallel_batch_is_consistent_and_deterministic() {
    // A SAT-call budget that expires *inside* a parallel proving batch must
    // hand back a partial result with no half-applied merges: the observer
    // counters, the returned report and the network must all agree, and —
    // because `max_sat_calls` is a deterministic budget dimension — the
    // partial result must be identical for every `sat_parallelism`.
    let bench = hwmcc_suite(Scale::Tiny)
        .into_iter()
        .max_by_key(|b| b.aig.num_ands())
        .expect("the suite is non-empty");
    let config = SweepConfig {
        num_initial_patterns: 16, // few patterns: plenty of SAT traffic
        sat_guided_patterns: false,
        ..SweepConfig::default()
    };

    let full = Sweeper::new(Engine::Stp)
        .config(config.sat_parallelism(4))
        .run(&bench.aig)
        .expect("unlimited run finishes");
    let total = full.report.sat_calls_total;
    assert!(total >= 2, "workload must need SAT calls (got {total})");
    // Expire mid-run, and with sat_parallelism=4 necessarily mid-batch.
    let limit = total / 2 + 1;

    let mut partials = Vec::new();
    for sat_parallelism in [1usize, 4] {
        let mut stats = StatsObserver::new();
        let run = Sweeper::new(Engine::Stp)
            .config(config.sat_parallelism(sat_parallelism))
            .budget(Budget::unlimited().with_max_sat_calls(limit))
            .observer(&mut stats)
            .run(&bench.aig);
        let partial = match run {
            Err(SweepError::BudgetExhausted { partial, .. }) => *partial,
            Ok(_) => panic!("limit {limit} of {total} calls must trip the budget"),
            Err(other) => panic!("unexpected error: {other}"),
        };
        // Exactly `limit` calls were committed — speculative calls that the
        // barrier discarded are not silently counted.
        assert_eq!(partial.report.sat_calls_total, limit);
        // No half-applied merges: the observer saw exactly the merges the
        // report claims, and the partial network is still equivalent.
        assert_eq!(stats.merges, partial.report.merges);
        assert_eq!(stats.constants, partial.report.constants);
        assert_eq!(stats.sat_calls_total(), partial.report.sat_calls_total);
        assert_eq!(stats.counterexamples, partial.report.sat_calls_sat);
        assert!(
            cec::check_equivalence(&bench.aig, &partial.aig, 500_000).equivalent,
            "a truncated parallel sweep must still be functionally equivalent"
        );
        partials.push(partial);
    }
    // Deterministic across sat_parallelism: same committed calls, same
    // merges, byte-identical partial network.
    let (a, b) = (&partials[0], &partials[1]);
    assert_eq!(a.report.merges, b.report.merges);
    assert_eq!(a.report.sat_calls_sat, b.report.sat_calls_sat);
    assert_eq!(a.report.sat_batches, b.report.sat_batches);
    assert_eq!(write_aiger_string(&a.aig), write_aiger_string(&b.aig));
}

#[test]
fn pipeline_subsumes_fixpoint_and_verifies_in_flow() {
    use stp_sat_sweep::Pipeline;
    let base = generators::barrel_shifter(8);
    let redundant = inject_redundancy(&base, 0.5, 21);
    let outcome = Pipeline::new(quick_config())
        .sweep_to_fixpoint(Engine::Stp, 3)
        .strash()
        .verify()
        .run(&redundant)
        .expect("pipeline verifies its own result");
    assert!(outcome.aig.num_ands() < redundant.num_ands());
    assert_eq!(outcome.report.gates_before, redundant.num_ands());
    assert_eq!(outcome.report.gates_after, outcome.aig.num_ands());
    // Per-pass reports cover every executed pass, strash and verify included.
    assert!(outcome.passes.iter().any(|p| p.name == "strash"));
    assert!(outcome.passes.iter().any(|p| p.name == "verify"));
}
