//! The cancel→resume determinism battery (CI gate).
//!
//! Headline invariant of the checkpoint subsystem: cancel a sweep at any
//! candidate boundary, resume it from the checkpoint, and the final SAT
//! calls, merges and output AIGER bytes are identical to an uninterrupted
//! run — for every `sat_parallelism` × `num_threads`.  The battery
//! exercises both cancellation mechanisms (`max_sat_calls` budget caps and
//! a mid-run [`CancelToken`] tripped from an observer callback), round-trips
//! every checkpoint through its binary encoding, and pins the corruption
//! paths (truncated bytes, wrong version, mutated netlist) to typed errors.

use stp_sat_sweep::netlist::{write_aiger_string, Aig, Lit};
use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::stp_sweep::checkpoint::CheckpointError;
use stp_sat_sweep::workloads::{hwmcc_suite, inject_redundancy, Scale};
use stp_sat_sweep::{
    Budget, CancelToken, Engine, Observer, SatCallOutcome, SweepCheckpoint, SweepConfig,
    SweepError, SweepReport, SweepResult, Sweeper,
};

/// The battery workload: a mid-size tiny-scale HWMCC-analog bench with
/// extra planted redundancy, swept with few initial patterns so the SAT
/// solver sees real traffic (counter-examples included).  Picked by name:
/// it needs hundreds of SAT calls — hundreds of cancel boundaries — while
/// staying fast enough for the debug-profile tier-1 run.
fn workload() -> Aig {
    let bench = hwmcc_suite(Scale::Tiny)
        .into_iter()
        .find(|b| b.name == "beemfwt5b3")
        .expect("the suite contains beemfwt5b3");
    inject_redundancy(&bench.aig, 0.3, 11)
}

fn config(sat_parallelism: usize, num_threads: usize) -> SweepConfig {
    SweepConfig {
        num_initial_patterns: 16,
        sat_guided_patterns: false,
        ..SweepConfig::default()
    }
    .sat_parallelism(sat_parallelism)
    .parallelism(num_threads)
}

/// Strips the wall-clock fields (measurements, not results).
fn strip(report: &SweepReport) -> SweepReport {
    SweepReport {
        simulation_time: Default::default(),
        sat_time: Default::default(),
        total_time: Default::default(),
        ..*report
    }
}

fn assert_identical(resumed: &SweepResult, reference: &SweepResult, context: &str) {
    assert_eq!(
        strip(&resumed.report),
        strip(&reference.report),
        "report counters diverged: {context}"
    );
    assert_eq!(
        write_aiger_string(&resumed.aig),
        write_aiger_string(&reference.aig),
        "AIGER bytes diverged: {context}"
    );
}

/// Cancels the run from inside the event stream: trips a [`CancelToken`]
/// after a fixed number of committed SAT calls.
struct CancelAfter {
    remaining: u64,
    token: CancelToken,
}

impl Observer for CancelAfter {
    fn on_sat_call(&mut self, _outcome: SatCallOutcome) {
        if self.remaining == 0 {
            self.token.cancel();
        } else {
            self.remaining -= 1;
        }
    }
}

#[test]
fn checkpoint_resume_identity_across_parallelism_grid() {
    let aig = workload();
    for engine in [Engine::Stp, Engine::Baseline] {
        for sat_parallelism in [1usize, 4] {
            for num_threads in [1usize, 4] {
                let config = config(sat_parallelism, num_threads);
                let reference = Sweeper::new(engine)
                    .config(config)
                    .run(&aig)
                    .expect("uninterrupted run finishes");
                let total = reference.report.sat_calls_total;
                assert!(total >= 4, "workload must need SAT calls (got {total})");

                // Budget-cap cancellation at a spread of candidate
                // boundaries (the first, the last, and the quartiles).
                for cut in [1, total / 4, total / 2, 3 * total / 4, total - 1] {
                    let cut = cut.max(1);
                    let context = format!(
                        "{engine}, sat_parallelism={sat_parallelism}, \
                         num_threads={num_threads}, cancelled after {cut}/{total} SAT calls"
                    );
                    let err = Sweeper::new(engine)
                        .config(config)
                        .budget(Budget::unlimited().with_max_sat_calls(cut))
                        .run(&aig)
                        .expect_err("the cap must trip");
                    let partial = match &err {
                        SweepError::BudgetExhausted { partial, .. } => partial,
                        other => panic!("unexpected error: {other}"),
                    };
                    assert_eq!(partial.report.sat_calls_total, cut, "{context}");
                    let checkpoint = err
                        .into_checkpoint()
                        .expect("a primed budget stop carries a checkpoint");
                    assert_eq!(checkpoint.sat_calls(), cut, "{context}");

                    // Round-trip through the binary codec before resuming.
                    let decoded = SweepCheckpoint::decode(&checkpoint.encode())
                        .expect("own encoding decodes");
                    assert_eq!(decoded, checkpoint);
                    let resumed = Sweeper::new(engine)
                        .resume_from(&aig, &decoded)
                        .expect("fingerprints match")
                        .run()
                        .expect("unlimited resume finishes");
                    assert_identical(&resumed, &reference, &context);
                }
            }
        }
    }
}

#[test]
fn checkpoint_resume_identity_after_mid_run_cancel_token() {
    let aig = workload();
    let config = config(4, 4);
    let reference = Sweeper::new(Engine::Stp)
        .config(config)
        .run(&aig)
        .expect("uninterrupted run finishes");
    let total = reference.report.sat_calls_total;
    assert!(total >= 4);

    for cancel_after in [0, total / 3, 2 * total / 3] {
        let token = CancelToken::new();
        let mut canceller = CancelAfter {
            remaining: cancel_after,
            token: token.clone(),
        };
        let context = format!("token tripped after ~{cancel_after}/{total} SAT calls");
        let err = Sweeper::new(Engine::Stp)
            .config(config)
            .budget(Budget::unlimited().with_cancel_token(token))
            .observer(&mut canceller)
            .run(&aig)
            .expect_err("the token must stop the run");
        let checkpoint = err
            .into_checkpoint()
            .expect("a primed cancel carries a checkpoint");
        // A token can trip mid-batch: the checkpoint then carries the
        // half-committed batch and the resume replays it exactly.
        let resumed = Sweeper::new(Engine::Stp)
            .resume_from(&aig, &checkpoint)
            .expect("fingerprints match")
            .run()
            .expect("resume finishes");
        assert_identical(&resumed, &reference, &context);
        assert!(
            cec::check_equivalence(&aig, &resumed.aig, 500_000).equivalent,
            "{context}"
        );
    }
}

#[test]
fn checkpoint_chained_cancels_still_reach_identity() {
    // Cancel, resume, cancel the resumed run, resume again: checkpoints
    // compose — the final result is still identical to an uninterrupted
    // run.  (`max_sat_calls` caps the cumulative total, so the second leg
    // gets a higher cap.)
    let aig = workload();
    let config = config(4, 1);
    let reference = Sweeper::new(Engine::Stp)
        .config(config)
        .run(&aig)
        .expect("runs");
    let total = reference.report.sat_calls_total;
    assert!(total >= 4);

    let first = Sweeper::new(Engine::Stp)
        .config(config)
        .budget(Budget::unlimited().with_max_sat_calls(total / 3))
        .run(&aig)
        .expect_err("first cap trips")
        .into_checkpoint()
        .expect("checkpoint");
    // `max_sat_calls` caps the cumulative total (the checkpoint carries
    // the calls already committed), so the second leg gets a higher cap.
    let second = Sweeper::new(Engine::Stp)
        .budget(Budget::unlimited().with_max_sat_calls(2 * total / 3))
        .resume_from(&aig, &first)
        .expect("matches")
        .run()
        .expect_err("second cap trips")
        .into_checkpoint()
        .expect("checkpoint");
    let finished = Sweeper::new(Engine::Stp)
        .resume_from(&aig, &second)
        .expect("matches")
        .run()
        .expect("final resume finishes");
    assert_identical(&finished, &reference, "two chained cancels");
}

#[test]
fn checkpoint_resume_identity_with_mid_run_compaction() {
    // Pattern compaction (`compact_every`) composes with checkpointing: a
    // run cancelled between (or right at) compaction events resumes into
    // byte-for-byte the same result as the uninterrupted compacting run —
    // and that run in turn produces the same network and SAT/merge counters
    // as a never-compacting run, with only `patterns_dropped` differing.
    let aig = workload();
    for engine in [Engine::Stp, Engine::Baseline] {
        let base = config(1, 1);
        let plain = Sweeper::new(engine)
            .config(base)
            .run(&aig)
            .expect("uninterrupted run finishes");
        // Cadence 1: compact after every counter-example, so every cancel
        // cut lands near a compaction boundary.
        let compacting = base.compact_every(1);
        let reference = Sweeper::new(engine)
            .config(compacting)
            .run(&aig)
            .expect("uninterrupted compacting run finishes");

        // Compaction must actually fire on this workload, and must not
        // perturb anything except the dropped-pattern count.
        assert!(reference.report.sat_calls_sat >= 2, "{engine}: needs CEs");
        assert!(
            reference.report.patterns_dropped > 0,
            "{engine}: compaction never fired"
        );
        let mut expected = strip(&plain.report);
        expected.patterns_dropped = reference.report.patterns_dropped;
        assert_eq!(strip(&reference.report), expected, "{engine}");
        assert_eq!(
            write_aiger_string(&reference.aig),
            write_aiger_string(&plain.aig),
            "{engine}: compaction changed the swept network"
        );

        let total = reference.report.sat_calls_total;
        for cut in [1, total / 4, total / 2, 3 * total / 4, total - 1] {
            let cut = cut.max(1);
            let context = format!("{engine}, compact_every=1, cancelled after {cut}/{total}");
            let checkpoint = Sweeper::new(engine)
                .config(compacting)
                .budget(Budget::unlimited().with_max_sat_calls(cut))
                .run(&aig)
                .expect_err("the cap must trip")
                .into_checkpoint()
                .expect("a primed budget stop carries a checkpoint");
            // Round-trip through the v2 codec (which carries the
            // compaction cursor and the dropped-pattern stats).
            let decoded =
                SweepCheckpoint::decode(&checkpoint.encode()).expect("own encoding decodes");
            assert_eq!(decoded, checkpoint, "{context}");
            let resumed = Sweeper::new(engine)
                .resume_from(&aig, &decoded)
                .expect("fingerprints match")
                .run()
                .expect("unlimited resume finishes");
            assert_identical(&resumed, &reference, &context);
        }
    }
}

#[test]
fn corrupt_checkpoints_yield_typed_errors_never_panics() {
    let aig = workload();
    let checkpoint = Sweeper::new(Engine::Stp)
        .config(config(1, 1))
        .budget(Budget::unlimited().with_max_sat_calls(2))
        .run(&aig)
        .expect_err("cap trips")
        .into_checkpoint()
        .expect("checkpoint");
    let bytes = checkpoint.encode();

    // Truncations at a spread of prefixes: always a typed decode error
    // (too short to parse, or a payload checksum mismatch).
    for fraction in [0usize, 1, 7, 500, 999] {
        let len = bytes.len() * fraction / 1000;
        let err = SweepCheckpoint::decode(&bytes[..len]).expect_err("prefix must not decode");
        assert!(
            matches!(
                err,
                CheckpointError::Truncated
                    | CheckpointError::BadMagic
                    | CheckpointError::Corrupt(_)
            ),
            "prefix {len}: {err:?}"
        );
    }

    // A single bit flip anywhere in the payload fails the checksum — a
    // corrupted checkpoint can never resume into a silently wrong sweep.
    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0x01;
    assert_eq!(
        SweepCheckpoint::decode(&flipped),
        Err(CheckpointError::Corrupt("payload checksum mismatch"))
    );

    // Wrong magic and unsupported version are distinguished.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(
        SweepCheckpoint::decode(&bad_magic),
        Err(CheckpointError::BadMagic)
    );
    let mut bad_version = bytes.clone();
    bad_version[8] = 0xFE;
    assert!(matches!(
        SweepCheckpoint::decode(&bad_version),
        Err(CheckpointError::UnsupportedVersion(_))
    ));

    // A decode error converts into the typed sweep error.
    let sweep_err: SweepError = SweepCheckpoint::decode(&bad_version).unwrap_err().into();
    assert!(matches!(sweep_err, SweepError::CheckpointMismatch(_)));

    // Resuming against a mutated netlist is rejected up front.
    let mut mutated = aig.clone();
    let extra = mutated.and(
        Lit::positive(mutated.inputs()[0]),
        Lit::positive(mutated.inputs()[1]),
    );
    mutated.add_output("extra", extra);
    let err = match Sweeper::new(Engine::Stp).resume_from(&mutated, &checkpoint) {
        Err(err) => err,
        Ok(_) => panic!("fingerprint mismatch must be rejected"),
    };
    assert!(matches!(err, SweepError::CheckpointMismatch(_)));
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

#[test]
fn checkpoint_solver_hygiene_reset_mid_sweep_leaves_results_unchanged() {
    // The ROADMAP hygiene contract, pinned: on this workload a per-slot
    // solver reset mid-sweep changes *nothing* — counters and AIGER output
    // are identical to the no-reset run for every interval.  (In general a
    // reset discards learnt clauses and may shift counter-example models —
    // and with them the SAT-call count by a few — but the swept network
    // stays byte-identical; the second half of the test pins that weaker,
    // universal property on the battery workload, where the counts do
    // drift.)
    let bench = hwmcc_suite(Scale::Tiny)
        .into_iter()
        .find(|b| b.name == "oski15a07b0s")
        .expect("the suite contains oski15a07b0s");
    let aig = inject_redundancy(&bench.aig, 0.3, 11);
    let base = config(1, 1);
    let plain = Sweeper::new(Engine::Stp)
        .config(base)
        .run(&aig)
        .expect("runs");
    assert!(
        plain.report.sat_calls_total >= 100,
        "needs real SAT traffic"
    );
    for interval in [1u64, 2, 8, 64] {
        let reset = Sweeper::new(Engine::Stp)
            .config(base.with_solver_reset_interval(interval))
            .run(&aig)
            .expect("runs");
        assert_eq!(
            strip(&reset.report),
            strip(&plain.report),
            "reset interval {interval} perturbed the counters"
        );
        assert_eq!(
            write_aiger_string(&reset.aig),
            write_aiger_string(&plain.aig),
            "reset interval {interval} perturbed the output"
        );
    }

    // Battery workload: the SAT-call count shifts slightly under resets,
    // but the swept network must still be byte-identical and equivalent.
    let aig = workload();
    let plain = Sweeper::new(Engine::Stp)
        .config(base)
        .run(&aig)
        .expect("runs");
    let reset = Sweeper::new(Engine::Stp)
        .config(base.with_solver_reset_interval(2))
        .run(&aig)
        .expect("runs");
    assert_eq!(
        write_aiger_string(&reset.aig),
        write_aiger_string(&plain.aig)
    );
    assert_eq!(reset.report.gates_after, plain.report.gates_after);
}

#[test]
fn checkpoint_solver_hygiene_interacts_cleanly() {
    // Per-slot hygiene resets (ROADMAP): with an aggressive reset interval
    // the sweep stays deterministic across the parallelism grid, remains
    // CEC-equivalent, and cancel→resume identity still holds.
    let aig = workload();
    let base = config(1, 1).with_solver_reset_interval(2);
    let reference = Sweeper::new(Engine::Stp)
        .config(base)
        .run(&aig)
        .expect("runs");
    assert!(cec::check_equivalence(&aig, &reference.aig, 500_000).equivalent);

    for sat_parallelism in [2usize, 4] {
        let run = Sweeper::new(Engine::Stp)
            .config(base.sat_parallelism(sat_parallelism))
            .run(&aig)
            .expect("runs");
        let mut expected = strip(&reference.report);
        expected.sat_parallelism = sat_parallelism;
        assert_eq!(strip(&run.report), expected);
        assert_eq!(
            write_aiger_string(&run.aig),
            write_aiger_string(&reference.aig)
        );
    }

    let total = reference.report.sat_calls_total;
    let checkpoint = Sweeper::new(Engine::Stp)
        .config(base)
        .budget(Budget::unlimited().with_max_sat_calls(total / 2))
        .run(&aig)
        .expect_err("cap trips")
        .into_checkpoint()
        .expect("checkpoint");
    let resumed = Sweeper::new(Engine::Stp)
        .resume_from(&aig, &checkpoint)
        .expect("matches")
        .run()
        .expect("runs");
    assert_identical(
        &resumed,
        &reference,
        "hygiene interval 2, cancelled at half",
    );
}
