//! Property-based integration tests: random expressions, random circuits and
//! random pattern sets exercising the cross-crate invariants (canonical-form
//! agreement, simulator agreement, sweep equivalence).

use proptest::prelude::*;
use stp_sat_sweep::bitsim::{
    ternary_fixpoint, AigSimulator, LutSimulator, PatternSet, TernaryPatternSet, TernarySimulator,
    TernaryValue,
};
use stp_sat_sweep::netlist::aiger::{read_aiger_str, write_aiger_string};
use stp_sat_sweep::netlist::{lutmap, Aig, LatchInit, Lit};
use stp_sat_sweep::stp::{canonical_form, canonical_form_enumerated, BoolVec, Expr};
use stp_sat_sweep::stp_sweep::stp_sim::StpSimulator;
use stp_sat_sweep::stp_sweep::{cec, sweeper, SweepConfig, SweepReport};
use stp_sat_sweep::workloads::inject_redundancy;
use stp_sat_sweep::workloads::sequential::random_sequential_aig;
use stp_sat_sweep::{BatchPolicy, Engine, Pipeline, Sweeper};

/// A random Boolean expression over `num_vars` variables with bounded depth.
fn arb_expr(num_vars: usize, depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..num_vars).prop_map(Expr::var),
        any::<bool>().prop_map(Expr::constant),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::xor(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::iff(a, b)),
        ]
    })
}

/// A random small AIG described as a list of gate recipes.
#[derive(Debug, Clone)]
struct RandomAig {
    num_inputs: usize,
    gates: Vec<(u8, usize, usize, bool, bool)>,
}

fn arb_aig() -> impl Strategy<Value = RandomAig> {
    (
        3usize..7,
        proptest::collection::vec(
            (
                0u8..4,
                any::<usize>(),
                any::<usize>(),
                any::<bool>(),
                any::<bool>(),
            ),
            1..40,
        ),
    )
        .prop_map(|(num_inputs, gates)| RandomAig { num_inputs, gates })
}

fn build_aig(spec: &RandomAig) -> Aig {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs("x", spec.num_inputs);
    let mut pool: Vec<Lit> = inputs;
    for &(op, a, b, na, nb) in &spec.gates {
        let la = pool[a % pool.len()].complement_if(na);
        let lb = pool[b % pool.len()].complement_if(nb);
        let gate = match op % 4 {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            _ => aig.nand(la, lb),
        };
        pool.push(gate);
    }
    // Use the last few pool entries as outputs.
    let num_outputs = 3.min(pool.len());
    for (i, lit) in pool.iter().rev().take(num_outputs).enumerate() {
        aig.add_output(format!("y{i}"), *lit);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 3 of the paper: the algebraically constructed canonical form
    /// agrees with brute-force enumeration and with direct evaluation.
    #[test]
    fn canonical_forms_agree(expr in arb_expr(4, 4)) {
        let num_vars = 4;
        let algebraic = canonical_form(&expr, num_vars).expect("within range");
        let enumerated = canonical_form_enumerated(&expr, num_vars).expect("within range");
        prop_assert_eq!(&algebraic, &enumerated);
        for bits in 0..(1usize << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|j| (bits >> j) & 1 == 1).collect();
            let args: Vec<BoolVec> = assignment.iter().map(|&b| BoolVec::new(b)).collect();
            prop_assert_eq!(algebraic.apply(&args).value(), expr.eval(&assignment));
        }
    }

    /// LUT mapping and both simulators preserve the function of random AIGs.
    #[test]
    fn mapping_and_simulation_preserve_functions(spec in arb_aig()) {
        let aig = build_aig(&spec);
        let patterns = PatternSet::random(aig.num_inputs(), 64, 11).unwrap();
        let reference = AigSimulator::new(&aig).run(&patterns);
        let lut = lutmap::map_to_luts(&aig, 4);
        let lut_state = LutSimulator::new(&lut).run(&patterns);
        let stp_state = StpSimulator::new(&lut).simulate_all(&patterns);
        for o in 0..aig.num_outputs() {
            prop_assert_eq!(
                reference.output_signature(&aig, o),
                lut_state.output_signature(&lut, o)
            );
            prop_assert_eq!(
                reference.output_signature(&aig, o),
                stp_state.output_signature(&lut, o)
            );
        }
    }

    /// Parallel simulation is bit-identical to sequential simulation on
    /// random AIGs and their LUT mappings, for every thread count.
    #[test]
    fn parallel_simulation_is_deterministic(spec in arb_aig(), threads in 2usize..5) {
        let aig = build_aig(&spec);
        let patterns = PatternSet::random(aig.num_inputs(), 192, 23).unwrap();
        let sequential = AigSimulator::new(&aig).run(&patterns);
        let parallel = AigSimulator::new(&aig).run_parallel(&patterns, threads);
        for id in aig.node_ids() {
            prop_assert_eq!(sequential.signature(id), parallel.signature(id));
        }
        let lut = lutmap::map_to_luts(&aig, 4);
        let stp = StpSimulator::new(&lut);
        let stp_seq = stp.simulate_all(&patterns);
        let stp_par = stp.simulate_all_parallel(&patterns, threads);
        for id in lut.node_ids() {
            prop_assert_eq!(stp_seq.signature(id), stp_par.signature(id));
        }
    }

    /// Sweeping with `num_threads` 1, 2 and 4 yields identical merge counts
    /// and identical post-sweep networks (determinism of the parallel path).
    #[test]
    fn parallel_sweeping_is_deterministic(spec in arb_aig(), seed in 0u64..500) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.3, seed);
        let base = SweepConfig {
            num_initial_patterns: 32,
            ..SweepConfig::default()
        };
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                Sweeper::new(Engine::Stp)
                    .config(base.parallelism(threads))
                    .run(&redundant)
                    .expect("valid config")
            })
            .collect();
        let reference = &runs[0];
        let reference_aiger = write_aiger_string(&reference.aig);
        for run in &runs[1..] {
            prop_assert_eq!(run.report.merges, reference.report.merges);
            prop_assert_eq!(run.report.constants, reference.report.constants);
            prop_assert_eq!(run.report.sat_calls_total, reference.report.sat_calls_total);
            prop_assert_eq!(run.report.resim_nodes, reference.report.resim_nodes);
            // The post-sweep networks are identical, not merely equivalent.
            prop_assert_eq!(write_aiger_string(&run.aig), reference_aiger.clone());
        }
    }

    /// The parallel-SAT determinism battery: sweeping with every
    /// `sat_parallelism` in {1, 2, 4} crossed with `num_threads` in {1, 4}
    /// commits identical SAT calls, identical merges and byte-identical
    /// AIGER output — the engine's batches, discards and counter-examples
    /// are a pure function of the sweep state, never of worker scheduling.
    #[test]
    fn parallel_sat_proving_is_deterministic(spec in arb_aig(), seed in 0u64..500) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.4, seed);
        let base = SweepConfig {
            num_initial_patterns: 16, // few patterns: SAT finds counter-examples
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        for engine in [Engine::Stp, Engine::Baseline] {
            let mut reference: Option<(stp_sat_sweep::SweepResult, String)> = None;
            for sat_parallelism in [1usize, 2, 4] {
                for num_threads in [1usize, 4] {
                    let run = Sweeper::new(engine)
                        .config(base.parallelism(num_threads).sat_parallelism(sat_parallelism))
                        .run(&redundant)
                        .expect("valid config");
                    let aiger = write_aiger_string(&run.aig);
                    match &reference {
                        None => reference = Some((run, aiger)),
                        Some((reference, reference_aiger)) => {
                            let (r, s) = (&run.report, &reference.report);
                            prop_assert_eq!(r.sat_calls_total, s.sat_calls_total);
                            prop_assert_eq!(r.sat_calls_sat, s.sat_calls_sat);
                            prop_assert_eq!(r.sat_calls_unsat, s.sat_calls_unsat);
                            prop_assert_eq!(r.sat_calls_undet, s.sat_calls_undet);
                            prop_assert_eq!(r.merges, s.merges);
                            prop_assert_eq!(r.constants, s.constants);
                            prop_assert_eq!(r.sat_batches, s.sat_batches);
                            prop_assert_eq!(r.sat_parallel_conflicts, s.sat_parallel_conflicts);
                            prop_assert_eq!(r.resim_events, s.resim_events);
                            prop_assert_eq!(r.resim_nodes, s.resim_nodes);
                            prop_assert_eq!(r.proved_by_simulation, s.proved_by_simulation);
                            prop_assert_eq!(r.disproved_by_simulation, s.disproved_by_simulation);
                            prop_assert_eq!(&aiger, reference_aiger);
                        }
                    }
                }
            }
        }
    }

    /// The sharding and batch-policy battery: for both engines, every shard
    /// count in {0 (unsharded), 1, 2, 4} crossed with both batch policies
    /// commits identical SAT calls, identical merges and byte-identical
    /// AIGER output.  Batch *shapes* (and therefore `sat_batches` and the
    /// conflict count) may differ between policies — the committed operation
    /// sequence must not.
    #[test]
    fn sharded_and_policy_sweeps_commit_identically(spec in arb_aig(), seed in 0u64..500) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.4, seed);
        let base = SweepConfig {
            num_initial_patterns: 16, // few patterns: SAT finds counter-examples
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        for engine in [Engine::Stp, Engine::Baseline] {
            let mut reference: Option<(stp_sat_sweep::SweepResult, String)> = None;
            for policy in [BatchPolicy::SupportDisjoint, BatchPolicy::RefinementAware] {
                // Shards must not even change batch shapes within a policy.
                let mut policy_reference: Option<stp_sat_sweep::SweepReport> = None;
                for shards in [0usize, 1, 2, 4] {
                    let run = Sweeper::new(engine)
                        .config(base.sat_parallelism(4).batch_policy(policy).shards(shards))
                        .run(&redundant)
                        .expect("valid config");
                    let aiger = write_aiger_string(&run.aig);
                    if let Some(p) = &policy_reference {
                        prop_assert_eq!(run.report.sat_batches, p.sat_batches);
                        prop_assert_eq!(
                            run.report.sat_batch_committed,
                            p.sat_batch_committed
                        );
                        prop_assert_eq!(
                            run.report.sat_parallel_conflicts,
                            p.sat_parallel_conflicts
                        );
                    } else {
                        policy_reference = Some(run.report);
                    }
                    match &reference {
                        None => reference = Some((run, aiger)),
                        Some((reference, reference_aiger)) => {
                            let (r, s) = (&run.report, &reference.report);
                            prop_assert_eq!(r.sat_calls_total, s.sat_calls_total);
                            prop_assert_eq!(r.sat_calls_sat, s.sat_calls_sat);
                            prop_assert_eq!(r.sat_calls_unsat, s.sat_calls_unsat);
                            prop_assert_eq!(r.sat_calls_undet, s.sat_calls_undet);
                            prop_assert_eq!(r.merges, s.merges);
                            prop_assert_eq!(r.constants, s.constants);
                            prop_assert_eq!(r.resim_events, s.resim_events);
                            prop_assert_eq!(r.resim_nodes, s.resim_nodes);
                            prop_assert_eq!(&aiger, reference_aiger);
                        }
                    }
                }
            }
        }
    }

    /// Sweeping a randomly redundant random AIG preserves equivalence and
    /// never grows the network.
    #[test]
    fn sweeping_preserves_equivalence(spec in arb_aig(), seed in 0u64..1000) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.3, seed);
        let config = SweepConfig {
            num_initial_patterns: 32,
            conflict_limit: 20_000,
            ..SweepConfig::default()
        };
        let result = Sweeper::new(Engine::Stp)
            .config(config)
            .run(&redundant)
            .expect("valid config");
        prop_assert!(result.aig.num_ands() <= redundant.num_ands());
        let check = cec::check_equivalence(&redundant, &result.aig, 200_000);
        prop_assert!(check.equivalent);
    }

    /// The builder API is a drop-in replacement: on generated workloads the
    /// legacy `sweep_stp` wrapper produces gate counts and reports identical
    /// to an explicit `Sweeper` invocation (times excluded — they are
    /// measurements, not results).  Since the wrapper now forwards to the
    /// builder, this pins two things: the wrapper forwards the config
    /// faithfully (no preset/flag drift), and the engine is deterministic
    /// across independent runs — the property every report-comparing test
    /// in this suite relies on.
    #[test]
    #[allow(deprecated)] // the legacy wrapper is the property under test
    fn builder_matches_legacy_wrapper(spec in arb_aig(), seed in 0u64..1000) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.3, seed);
        let config = SweepConfig {
            num_initial_patterns: 32,
            ..SweepConfig::default()
        };
        let legacy = sweeper::sweep_stp(&redundant, &config);
        let builder = Sweeper::new(Engine::Stp)
            .config(config)
            .run(&redundant)
            .expect("valid config");
        prop_assert_eq!(legacy.aig.num_ands(), builder.aig.num_ands());
        prop_assert_eq!(legacy.aig.num_nodes(), builder.aig.num_nodes());
        let strip = |r: &SweepReport| SweepReport {
            simulation_time: Default::default(),
            sat_time: Default::default(),
            total_time: Default::default(),
            ..*r
        };
        prop_assert_eq!(strip(&legacy.report), strip(&builder.report));
    }

    /// The word kernels of this build — scalar autovectorized or, under the
    /// `simd` feature, the lane-widened path — agree bit-for-bit with a
    /// naive per-bit reference.  CI runs this property on both feature
    /// legs, which transitively proves the simd and scalar kernels are
    /// bit-identical to each other.
    #[test]
    fn word_kernels_match_per_bit_reference(
        a in proptest::collection::vec(any::<u64>(), 0..19),
        b in proptest::collection::vec(any::<u64>(), 0..19),
        mask_a in any::<bool>(),
        mask_b in any::<bool>(),
    ) {
        use stp_sat_sweep::bitsim::kernels;
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let (ma, mb) = (
            if mask_a { u64::MAX } else { 0 },
            if mask_b { u64::MAX } else { 0 },
        );
        let per_bit = |f: &dyn Fn(bool, bool) -> bool| -> Vec<u64> {
            (0..n)
                .map(|w| {
                    (0..64).fold(0u64, |acc, i| {
                        let (x, y) = ((a[w] >> i) & 1 == 1, (b[w] >> i) & 1 == 1);
                        acc | ((f(x, y) as u64) << i)
                    })
                })
                .collect()
        };

        let mut out = vec![0u64; n];
        kernels::and2_masked(a, b, ma, mb, &mut out);
        prop_assert_eq!(&out, &per_bit(&|x, y| (x ^ mask_a) & (y ^ mask_b)));

        let mut acc = a.to_vec();
        kernels::and_assign(&mut acc, b);
        prop_assert_eq!(&acc, &per_bit(&|x, y| x & y));

        let mut acc = a.to_vec();
        kernels::andnot_assign(&mut acc, b);
        prop_assert_eq!(&acc, &per_bit(&|x, y| x & !y));

        let mut acc = a.to_vec();
        kernels::or_assign(&mut acc, b);
        prop_assert_eq!(&acc, &per_bit(&|x, y| x | y));

        for invert in [false, true] {
            let mut dst = vec![0u64; n];
            kernels::copy_polarity(&mut dst, b, invert);
            prop_assert_eq!(&dst, &per_bit(&|_, y| y ^ invert));
        }
    }

    /// Arena-backed simulation agrees with direct per-pattern evaluation of
    /// the network — the ground-truth check under the SoA layout.
    #[test]
    fn arena_simulation_matches_per_pattern_evaluation(spec in arb_aig()) {
        let aig = build_aig(&spec);
        let patterns = PatternSet::random(aig.num_inputs(), 96, 77).unwrap();
        let state = AigSimulator::new(&aig).run(&patterns);
        let lut = lutmap::map_to_luts(&aig, 6);
        let lut_state = LutSimulator::new(&lut).run(&patterns);
        let stp_state = StpSimulator::new(&lut).simulate_all(&patterns);
        for p in 0..patterns.num_patterns() {
            let assignment = patterns.assignment(p);
            let expected = aig.evaluate(&assignment);
            for (o, &exp) in expected.iter().enumerate() {
                prop_assert_eq!(state.output_signature(&aig, o).get_bit(p), exp);
                prop_assert_eq!(lut_state.output_signature(&lut, o).get_bit(p), exp);
                prop_assert_eq!(stp_state.output_signature(&lut, o).get_bit(p), exp);
            }
        }
    }

    /// Every optimisation pass — the structural cleanups, cut rewriting,
    /// and the full dc2 fixpoint loop — preserves equivalence on random
    /// redundant AIGs and never grows the network (`cfold` rewires in
    /// place, every other pass rebuilds, and rewriting only accepts
    /// candidates with non-negative gain).
    #[test]
    fn optimisation_passes_preserve_equivalence_and_never_grow(
        spec in arb_aig(),
        seed in 0u64..500,
    ) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.3, seed);
        let config = SweepConfig {
            num_initial_patterns: 32,
            ..SweepConfig::default()
        };
        for script in ["strash", "cfold", "gc", "rewrite", "rewrite;strash", "dc2(2)"] {
            let result = Pipeline::new(config)
                .with_script(script)
                .expect("script parses")
                .run(&redundant)
                .expect("pipeline runs");
            prop_assert!(
                result.aig.num_ands() <= redundant.num_ands(),
                "script {} grew the network: {} -> {}",
                script,
                redundant.num_ands(),
                result.aig.num_ands()
            );
            let check = cec::check_equivalence(&redundant, &result.aig, 200_000);
            prop_assert!(check.equivalent, "script {} broke equivalence", script);
        }
    }

    /// The scripted rewrite→sweep flow is parallelism-invariant: every
    /// `num_threads` × `sat_parallelism` in {1, 4}² produces byte-identical
    /// AIGER output and identical merge counts.  Rewriting is purely
    /// structural, so all nondeterminism risk concentrates in the sweep —
    /// this pins the composition end to end.
    #[test]
    fn scripted_rewrite_sweep_is_parallelism_invariant(
        spec in arb_aig(),
        seed in 0u64..500,
    ) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.4, seed);
        let base = SweepConfig {
            num_initial_patterns: 16, // few patterns: SAT finds counter-examples
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        let mut reference: Option<(String, u64)> = None;
        for num_threads in [1usize, 4] {
            for sat_parallelism in [1usize, 4] {
                let result = Pipeline::new(
                    base.parallelism(num_threads).sat_parallelism(sat_parallelism),
                )
                .with_script("rewrite;sweep(stp)")
                .expect("script parses")
                .run(&redundant)
                .expect("pipeline runs");
                let aiger = write_aiger_string(&result.aig);
                let sat_calls = result.report.sat_calls_total;
                match &reference {
                    None => reference = Some((aiger, sat_calls)),
                    Some((want_aiger, want_sat_calls)) => {
                        prop_assert!(
                            &aiger == want_aiger,
                            "{}x{} diverged from the sequential run",
                            num_threads,
                            sat_parallelism
                        );
                        prop_assert_eq!(sat_calls, *want_sat_calls);
                    }
                }
            }
        }
    }

    /// Pattern compaction never changes the sweep: identical SAT calls,
    /// merges, constants and byte-identical output networks with and
    /// without it, on both engines.
    #[test]
    fn pattern_compaction_is_behavior_neutral(spec in arb_aig(), seed in 0u64..500) {
        let aig = build_aig(&spec);
        let redundant = inject_redundancy(&aig, 0.4, seed);
        let base = SweepConfig {
            num_initial_patterns: 16, // few patterns: SAT finds counter-examples
            sat_guided_patterns: false,
            ..SweepConfig::default()
        };
        for engine in [Engine::Stp, Engine::Baseline] {
            let plain = Sweeper::new(engine)
                .config(base)
                .run(&redundant)
                .expect("valid config");
            let compacted = Sweeper::new(engine)
                .config(base.compact_every(1))
                .run(&redundant)
                .expect("valid config");
            let (r, s) = (&compacted.report, &plain.report);
            prop_assert_eq!(r.sat_calls_total, s.sat_calls_total);
            prop_assert_eq!(r.sat_calls_sat, s.sat_calls_sat);
            prop_assert_eq!(r.merges, s.merges);
            prop_assert_eq!(r.constants, s.constants);
            prop_assert_eq!(r.resim_events, s.resim_events);
            prop_assert_eq!(
                write_aiger_string(&compacted.aig),
                write_aiger_string(&plain.aig)
            );
        }
    }
}

/// A wide, shallow circuit whose levels are large enough to engage the
/// work-stealing parallel path (`rows × words ≥ PARALLEL_GRAIN`), crossed
/// with thread counts {1, 2, 4}: the stolen evaluation must be bit-identical
/// to the sequential one for both engines.
#[test]
fn work_stealing_is_thread_count_invariant_on_wide_levels() {
    let mut aig = Aig::new();
    let xs = aig.add_inputs("x", 24);
    let mut layer: Vec<Lit> = xs.clone();
    // Three wide layers of mixed AND/XOR/MUX cones.
    for round in 0u64..3 {
        let mut next = Vec::new();
        for i in 0..600 {
            let a = layer[(i * 7 + round as usize) % layer.len()];
            let b = layer[(i * 13 + 5) % layer.len()];
            let c = layer[(i * 29 + 11) % layer.len()];
            let lit = match i % 3 {
                0 => aig.and(a, b),
                1 => aig.xor(a, c),
                _ => aig.mux(a, b, c),
            };
            next.push(lit);
        }
        layer = next;
    }
    for (i, &lit) in layer.iter().take(8).enumerate() {
        aig.add_output(format!("o{i}"), lit);
    }

    let patterns = PatternSet::random(24, 512, 0xFEED).unwrap();
    let sequential = AigSimulator::new(&aig).run(&patterns);
    for threads in [1usize, 2, 4] {
        let parallel = AigSimulator::new(&aig).run_parallel(&patterns, threads);
        for id in aig.node_ids() {
            assert_eq!(
                sequential.signature(id),
                parallel.signature(id),
                "node {id} differs at {threads} threads"
            );
        }
    }

    let lut = lutmap::map_to_luts(&aig, 6);
    let stp = StpSimulator::new(&lut);
    let stp_seq = stp.simulate_all(&patterns);
    for threads in [2usize, 4] {
        let stp_par = stp.simulate_all_parallel(&patterns, threads);
        for id in lut.node_ids() {
            assert_eq!(
                stp_seq.signature(id),
                stp_par.signature(id),
                "LUT node {id} differs at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ternary simulation abstracts binary simulation: on any pattern, every
    /// input position left definite pins the corresponding binary value, and
    /// wherever the ternary output is definite it must equal the binary
    /// output of *every* concretisation of the `X` positions — checked
    /// against both binary engines (`Aig::evaluate` and the signature-based
    /// [`AigSimulator`]).
    #[test]
    fn ternary_simulation_abstracts_binary(
        spec in arb_aig(),
        bits in any::<u64>(),
        xmask in any::<u64>(),
        flips in any::<u64>(),
    ) {
        let aig = build_aig(&spec);
        let n = aig.num_inputs();
        let base: Vec<bool> = (0..n).map(|i| bits >> (i % 64) & 1 == 1).collect();
        let is_x: Vec<bool> = (0..n).map(|i| xmask >> (i % 64) & 1 == 1).collect();

        let mut patterns = TernaryPatternSet::new(n);
        let ternary_pattern: Vec<TernaryValue> = (0..n)
            .map(|i| if is_x[i] { TernaryValue::X } else { TernaryValue::from_bool(base[i]) })
            .collect();
        patterns.push_pattern(&ternary_pattern);
        let state = TernarySimulator::new(&aig).run(&patterns);

        // Two concretisations of the X positions: all-as-base and
        // base-xor-flips.
        for variant in 0..2u64 {
            let assignment: Vec<bool> = (0..n)
                .map(|i| {
                    if is_x[i] && variant == 1 {
                        base[i] ^ (flips >> (i % 64) & 1 == 1)
                    } else {
                        base[i]
                    }
                })
                .collect();
            let evaluated = aig.evaluate(&assignment);
            let mut binary_patterns = PatternSet::new(n);
            binary_patterns.push_pattern(&assignment);
            let sim = AigSimulator::new(&aig).run(&binary_patterns);
            for (o, output) in aig.outputs().iter().enumerate() {
                let simulated = sim
                    .signature(output.lit.node())
                    .get_bit(0)
                    ^ output.lit.is_complemented();
                prop_assert_eq!(evaluated[o], simulated);
                if let Some(value) = state.output_value(&aig, o, 0).concrete() {
                    prop_assert_eq!(value, evaluated[o]);
                }
            }
        }

        // A fully definite pattern loses nothing: the ternary result is
        // definite everywhere and equals the binary result.
        let mut definite = TernaryPatternSet::new(n);
        definite.push_pattern(
            &base.iter().map(|&b| TernaryValue::from_bool(b)).collect::<Vec<_>>(),
        );
        let definite_state = TernarySimulator::new(&aig).run(&definite);
        let evaluated = aig.evaluate(&base);
        for (o, _) in aig.outputs().iter().enumerate() {
            prop_assert_eq!(
                definite_state.output_value(&aig, o, 0).concrete(),
                Some(evaluated[o])
            );
        }
    }

    /// AIGER round trip of sequential networks, including `X` initial
    /// values: write → read → write is byte-identical, and the latch
    /// structure (count, initial values, state names) survives.
    #[test]
    fn aiger_latch_round_trip(
        num_inputs in 1usize..5,
        num_latches in 1usize..6,
        gates in 1usize..7,
        allow_x in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let aig = random_sequential_aig(num_inputs, num_latches, gates, allow_x, seed);
        let text = write_aiger_string(&aig);
        let back = read_aiger_str(&text).expect("own output must parse");
        prop_assert_eq!(write_aiger_string(&back), text);
        prop_assert_eq!(back.num_latches(), aig.num_latches());
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(back.num_outputs(), aig.num_outputs());
        for (ours, theirs) in aig.latches().iter().zip(back.latches()) {
            prop_assert_eq!(ours.init, theirs.init);
        }
        // AIGER carries no symbol table, so names change — with concrete
        // initial states the BMC oracle still proves the round trip
        // behaviour-preserving.  (X-init latches are excluded because the
        // oracle shares frame-0 unknowns by name.)
        if aig.latches().iter().all(|l| l.init != LatchInit::X) {
            let verdict = stp_sat_sweep::bmc_sec(&aig, &back, 3, 100_000);
            prop_assert!(verdict.equivalent, "round trip changed behaviour: {:?}", verdict);
        }
    }

    /// The ternary initial-state fixpoint is monotone (a latch only ever
    /// widens from a definite value to `X`, never back, and never flips)
    /// and terminates within `num_latches + 1` rounds.
    #[test]
    fn ternary_fixpoint_is_monotone_and_terminates(
        num_inputs in 1usize..5,
        num_latches in 1usize..6,
        gates in 1usize..7,
        allow_x in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let aig = random_sequential_aig(num_inputs, num_latches, gates, allow_x, seed);
        let fix = ternary_fixpoint(&aig);
        prop_assert!(fix.iterations <= aig.num_latches() + 1);
        prop_assert_eq!(fix.values.len(), aig.num_latches());
        prop_assert_eq!(fix.trajectories.len(), aig.num_latches());
        for (l, (latch, trajectory)) in
            aig.latches().iter().zip(&fix.trajectories).enumerate()
        {
            prop_assert_eq!(trajectory.len(), fix.iterations + 1);
            prop_assert_eq!(trajectory[0], TernaryValue::from_init(latch.init));
            prop_assert_eq!(*trajectory.last().unwrap(), fix.values[l]);
            for step in trajectory.windows(2) {
                let widened = step[0] != step[1];
                prop_assert!(
                    !widened || step[1] == TernaryValue::X,
                    "latch {} moved {:?} -> {:?}: not a widening",
                    l, step[0], step[1]
                );
            }
        }
    }
}
