//! Resource-bound guarantees of the locality-first simulation core.
//!
//! Two contracts are pinned here:
//!
//! * **O(1) allocations per simulation pass.**  The struct-of-arrays
//!   [`SignatureArena`] replaces one heap `Vec<u64>` per node with a single
//!   contiguous allocation, so a full [`AigSimulator::run`] performs a
//!   constant number of heap allocations regardless of network size.  A
//!   counting `#[global_allocator]` measures the real number.
//!
//! * **Bounded pattern footprint under compaction.**  With
//!   `compact_every` set, the pattern set never retains more useful columns
//!   than the class structure can distinguish: every compaction event keeps
//!   at most `#AND nodes + 1` columns (partition refinement keeps one
//!   column per prototype split, and there are at most `#ANDs + 1`
//!   prototypes), so the live footprint stays bounded by that plus the
//!   compaction cadence.
//!
//! The two tests share a lock: the allocation counter is global, so the
//! footprint test must not allocate concurrently with the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use stp_sat_sweep::bitsim::{AigSimulator, PatternSet};
use stp_sat_sweep::netlist::{Aig, Lit};
use stp_sat_sweep::workloads::{hwmcc_suite, inject_redundancy, Scale};
use stp_sat_sweep::{Engine, Observer, SweepConfig, Sweeper};

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the two tests so the footprint run's allocations cannot leak
/// into the measurement window.
static SERIAL: Mutex<()> = Mutex::new(());

/// A wide synthetic network: enough AND nodes that a per-node layout would
/// be forced into thousands of signature allocations.
fn wide_aig(num_ands: usize) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs("x", 16);
    let mut layer: Vec<Lit> = xs.clone();
    let mut built = 0usize;
    while built < num_ands {
        let mut next = Vec::new();
        for i in 0..layer.len().min(num_ands - built) {
            let a = layer[i];
            let b = layer[(i * 7 + 3) % layer.len()];
            next.push(aig.and(a, if i % 2 == 0 { b } else { !b }));
            built += 1;
        }
        layer = next;
    }
    for (i, &lit) in layer.iter().take(4).enumerate() {
        aig.add_output(format!("o{i}"), lit);
    }
    aig
}

#[test]
fn simulation_pass_performs_constant_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let aig = wide_aig(3000);
    assert!(aig.num_nodes() >= 3000, "workload must be wide");
    let patterns = PatternSet::random(16, 4096, 0xA110C).unwrap();
    let sim = AigSimulator::new(&aig);

    // Warm up once so lazily initialized runtime structures (test harness
    // buffers, etc.) don't count against the measured pass.
    let warm = sim.run(&patterns);
    drop(warm);

    let before = ALLOCS.load(Ordering::SeqCst);
    let state = sim.run(&patterns);
    let after = ALLOCS.load(Ordering::SeqCst);
    let allocs = after - before;

    // The arena needs two allocations (the word plane and the generation
    // tags).  Allow a little slack for allocator-internal bookkeeping, but
    // stay orders of magnitude below the per-node layout's floor of one
    // allocation per AND node.
    assert!(
        allocs <= 8,
        "expected O(1) allocations for {} nodes, measured {allocs}",
        aig.num_nodes()
    );
    assert_eq!(state.num_patterns(), 4096);
}

/// Records every compaction event a sweep emits.
#[derive(Default)]
struct CompactionLog {
    events: Vec<(usize, usize)>,
}

impl Observer for CompactionLog {
    fn on_compaction(&mut self, kept: usize, dropped: usize) {
        self.events.push((kept, dropped));
    }
}

#[test]
fn compaction_bounds_the_pattern_footprint() {
    let _guard = SERIAL.lock().unwrap();
    let bench = hwmcc_suite(Scale::Tiny)
        .into_iter()
        .find(|b| b.name == "beemfwt5b3")
        .expect("the suite contains beemfwt5b3");
    let aig = inject_redundancy(&bench.aig, 0.3, 11);
    let num_ands = aig.num_nodes() - aig.num_inputs() - 1;

    let mut log = CompactionLog::default();
    let result = Sweeper::new(Engine::Stp)
        .config(
            SweepConfig {
                num_initial_patterns: 16,
                sat_guided_patterns: false,
                ..SweepConfig::default()
            }
            .compact_every(1),
        )
        .observer(&mut log)
        .run(&aig)
        .expect("sweep finishes");
    assert!(
        result.report.sat_calls_sat >= 2,
        "workload must produce counter-examples"
    );

    assert!(!log.events.is_empty(), "compaction never fired");
    assert!(
        log.events.iter().any(|&(_, dropped)| dropped > 0),
        "compaction never dropped a column"
    );
    // Partition refinement keeps at most one column per prototype split;
    // prototypes are the constant row plus one per node, so the kept
    // footprint can never exceed the class structure's resolving power.
    for &(kept, _) in &log.events {
        assert!(
            kept <= num_ands + 1,
            "compaction kept {kept} columns, bound is {} + 1",
            num_ands
        );
    }
    assert_eq!(
        result.report.patterns_dropped,
        log.events.iter().map(|&(_, d)| d as u64).sum::<u64>(),
        "report aggregates the observer's dropped counts"
    );
}
