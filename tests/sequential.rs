//! Sequential sweeping differential battery: every latch merge the engine
//! commits is verified against the BMC sequential-equivalence oracle
//! ([`bmc_sec`]), planted redundancy must actually be found, a seeded
//! single-gate mutation must be rejected by the oracle (negative control),
//! and the sweep must be byte-identical across every thread / SAT-
//! parallelism setting and across a cancel → resume boundary.

use stp_sat_sweep::netlist::aiger::write_aiger_string;
use stp_sat_sweep::netlist::{Aig, LatchInit};
use stp_sat_sweep::workloads::sequential::{
    flip_and_input, random_sequential_aig, sequential_miter, with_duplicate_latches,
};
use stp_sat_sweep::{
    bmc_sec, Budget, Engine, SweepConfig, SweepError, SweepReport, SweepResult, Sweeper,
};

const ORACLE_FRAMES: usize = 6;
const ORACLE_CONFLICTS: u64 = 200_000;

fn seq_config() -> SweepConfig {
    SweepConfig::sequential(1).with_patterns(64)
}

fn run_seq(aig: &Aig, config: SweepConfig) -> SweepResult {
    Sweeper::new(Engine::Stp)
        .config(config)
        .run(aig)
        .expect("valid sequential config, unlimited budget")
}

/// Asserts the swept network is sequentially equivalent to the original up
/// to the oracle bound — the differential check behind every battery test.
fn assert_oracle_accepts(original: &Aig, swept: &Aig) {
    let verdict = bmc_sec(original, swept, ORACLE_FRAMES, ORACLE_CONFLICTS);
    assert!(
        verdict.equivalent && !verdict.undetermined,
        "oracle rejected the sweep: {verdict:?}"
    );
}

/// The parallelism-invariant portion of a report: everything except the
/// requested thread counts and the wall-clock times.
fn counters(report: &SweepReport) -> impl PartialEq + std::fmt::Debug {
    (
        (
            report.gates_before,
            report.gates_after,
            report.levels,
            report.merges,
            report.constants,
        ),
        (
            report.sat_calls_sat,
            report.sat_calls_unsat,
            report.sat_calls_undet,
            report.sat_calls_total,
            report.sat_batches,
        ),
        (
            report.seq_latches_before,
            report.seq_latches_after,
            report.seq_candidates,
            report.seq_ternary_constants,
            report.seq_induction_refuted,
            report.seq_induction_undet,
            report.ternary_iterations,
        ),
    )
}

#[test]
fn planted_duplicates_are_merged_and_survive_the_oracle() {
    for seed in [3u64, 17, 42] {
        let base = random_sequential_aig(4, 5, 5, false, seed);
        let workload = with_duplicate_latches(&base, 4);
        assert!(
            workload.equivalent_pairs.iter().any(|p| p.2),
            "the battery must cover complemented pairs"
        );
        let result = run_seq(&workload.aig, seq_config());
        let expected_removals = workload.equivalent_pairs.len() + workload.constant_latches.len();
        assert!(
            result.report.seq_latches_after <= result.report.seq_latches_before - expected_removals,
            "seed {seed}: planted redundancy not fully recovered: {} -> {} \
             (expected at least {expected_removals} removals)",
            result.report.seq_latches_before,
            result.report.seq_latches_after,
        );
        // A duplicate of a latch that is itself a ternary constant is
        // committed as a constant, not a pair merge — so count both, and
        // demand at least one genuine latch-pair merge per workload.
        assert!(
            result.report.merges + result.report.constants >= expected_removals,
            "seed {seed}: merges {} + constants {} < {expected_removals}",
            result.report.merges,
            result.report.constants,
        );
        assert!(
            result.report.merges >= 1,
            "seed {seed}: no latch pair merged"
        );
        assert_oracle_accepts(&workload.aig, &result.aig);
    }
}

#[test]
fn a_self_miter_collapses_onto_one_machine() {
    let base = random_sequential_aig(3, 4, 4, false, 9);
    let miter = sequential_miter(&base, &base);
    let result = run_seq(&miter, seq_config());
    assert_eq!(result.report.seq_latches_before, 2 * base.num_latches());
    assert!(
        result.report.seq_latches_after <= base.num_latches(),
        "every latch pair of the self-miter must merge: {} left",
        result.report.seq_latches_after
    );
    assert_oracle_accepts(&miter, &result.aig);
}

#[test]
fn the_oracle_rejects_a_seeded_polarity_mutant() {
    // Negative control: the same oracle that accepts every sweep must
    // reject a single flipped AND-input polarity somewhere in the battery.
    let base = random_sequential_aig(4, 5, 5, false, 3);
    let workload = with_duplicate_latches(&base, 4);
    let num_ands = workload.aig.num_ands() as u64;
    let mut rejected = 0usize;
    for seed in 0..num_ands {
        let mutant = flip_and_input(&workload.aig, seed).expect("the workload has AND gates");
        let verdict = bmc_sec(&workload.aig, &mutant, ORACLE_FRAMES, ORACLE_CONFLICTS);
        if !verdict.equivalent {
            assert!(
                verdict.counterexample_frame.is_some() || verdict.undetermined,
                "a rejection must carry a counter-example frame: {verdict:?}"
            );
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "no polarity mutation was observable — the oracle has no teeth"
    );
}

#[test]
fn ternary_analysis_commits_reachable_constants_without_sat() {
    // One stuck-at-0 latch (next = state AND pi) beside a live one: the
    // constant is provable by ternary fixpoint alone.
    let mut aig = Aig::new();
    let x = aig.add_input("x");
    let live = aig.add_latch("live", LatchInit::Zero);
    let stuck = aig.add_latch("stuck", LatchInit::Zero);
    let live_next = aig.xor(live, x);
    let stuck_next = aig.and(stuck, x);
    aig.set_latch_next(0, live_next);
    aig.set_latch_next(1, stuck_next);
    let y = aig.or(live, stuck);
    aig.add_output("y", y);

    let result = run_seq(&aig, seq_config());
    assert!(result.report.seq_ternary_constants >= 1);
    assert!(result.report.seq_latches_after < result.report.seq_latches_before);
    assert!(result.report.ternary_iterations >= 1);
    assert_oracle_accepts(&aig, &result.aig);
}

#[test]
fn x_initialised_latches_are_left_alone() {
    // An X-initialised duplicate pair is NOT a valid sequential merge (the
    // two latches may wake up differently); the engine must skip it.
    let mut aig = Aig::new();
    let d = aig.add_input("d");
    let q0 = aig.add_latch("q0", LatchInit::X);
    let q1 = aig.add_latch("q1", LatchInit::X);
    aig.set_latch_next(0, d);
    aig.set_latch_next(1, d);
    let y = aig.xor(q0, q1);
    aig.add_output("y", y);

    let result = run_seq(&aig, seq_config());
    assert_eq!(
        result.report.seq_latches_after, 2,
        "X-init latches must survive"
    );
    assert_oracle_accepts(&aig, &result.aig);
}

#[test]
fn deeper_induction_agrees_with_simple_induction_on_planted_pairs() {
    // The planted pairs are 1-inductive, so k = 3 must find the same
    // merges (possibly more elsewhere) and still satisfy the oracle.
    let base = random_sequential_aig(4, 4, 4, false, 17);
    let workload = with_duplicate_latches(&base, 3);
    let shallow = run_seq(&workload.aig, seq_config());
    let deep = run_seq(&workload.aig, seq_config().with_seq_depth(3));
    assert!(deep.report.seq_latches_after <= shallow.report.seq_latches_after);
    assert_oracle_accepts(&workload.aig, &deep.aig);
}

#[test]
fn the_sweep_is_identical_across_threads_parallelism_and_engines() {
    let base = random_sequential_aig(4, 5, 5, true, 7);
    let workload = with_duplicate_latches(&base, 4);
    let reference = run_seq(&workload.aig, seq_config());
    let reference_bytes = write_aiger_string(&reference.aig);
    assert_oracle_accepts(&workload.aig, &reference.aig);
    for num_threads in [1usize, 4] {
        for sat_parallelism in [1usize, 4] {
            for engine in [Engine::Stp, Engine::Baseline] {
                let config = seq_config()
                    .parallelism(num_threads)
                    .sat_parallelism(sat_parallelism);
                let result = Sweeper::new(engine)
                    .config(config)
                    .run(&workload.aig)
                    .expect("valid sequential config");
                assert_eq!(
                    write_aiger_string(&result.aig),
                    reference_bytes,
                    "threads={num_threads} sat={sat_parallelism} {engine:?}: \
                     output bytes diverged"
                );
                assert_eq!(
                    counters(&result.report),
                    counters(&reference.report),
                    "threads={num_threads} sat={sat_parallelism} {engine:?}: \
                     counters diverged"
                );
            }
        }
    }
}

#[test]
fn a_cancelled_sweep_resumes_to_the_uninterrupted_result() {
    let base = random_sequential_aig(4, 5, 5, false, 23);
    let workload = with_duplicate_latches(&base, 4);
    let uninterrupted = run_seq(&workload.aig, seq_config());
    let total_calls = uninterrupted.report.sat_calls_total;
    assert!(
        total_calls >= 2,
        "the battery needs a run worth interrupting"
    );

    // Interrupt at every feasible SAT-call budget, resume each, and demand
    // byte- and counter-identical final results.
    for limit in [1, total_calls / 2, total_calls - 1] {
        let budget = Budget::unlimited().with_max_sat_calls(limit);
        let err = Sweeper::new(Engine::Stp)
            .config(seq_config())
            .budget(budget)
            .run(&workload.aig)
            .expect_err("the budget must trip mid-run");
        let SweepError::BudgetExhausted { checkpoint, .. } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        let checkpoint = *checkpoint.expect("a primed run leaves a resumable checkpoint");
        let resumed = Sweeper::new(Engine::Stp)
            .config(seq_config())
            .resume_run(&workload.aig, &checkpoint)
            .expect("the resumed run finishes under an unlimited budget");
        assert_eq!(
            write_aiger_string(&resumed.aig),
            write_aiger_string(&uninterrupted.aig),
            "limit={limit}: resume diverged from the uninterrupted sweep"
        );
        assert_eq!(
            counters(&resumed.report),
            counters(&uninterrupted.report),
            "limit={limit}: resumed counters diverged"
        );
    }
}

#[test]
fn sessions_and_combinational_resume_reject_sequential_work() {
    let base = random_sequential_aig(3, 3, 3, false, 1);
    let err = Sweeper::new(Engine::Stp)
        .config(seq_config())
        .begin(&base)
        .map(|_| ())
        .expect_err("a SweepSession cannot drive a sequential sweep");
    assert!(matches!(err, SweepError::InvalidConfig(_)), "{err:?}");

    // A sequential checkpoint must not resume through the combinational
    // session path.
    let budget = Budget::unlimited().with_max_sat_calls(1);
    let workload = with_duplicate_latches(&base, 2);
    let err = Sweeper::new(Engine::Stp)
        .config(seq_config())
        .budget(budget)
        .run(&workload.aig)
        .expect_err("the one-call budget must trip");
    let SweepError::BudgetExhausted { checkpoint, .. } = err else {
        panic!("expected BudgetExhausted, got {err:?}");
    };
    let checkpoint = *checkpoint.expect("resumable checkpoint");
    let err = Sweeper::new(Engine::Stp)
        .config(seq_config())
        .resume_from(&workload.aig, &checkpoint)
        .map(|_| ())
        .expect_err("resume_from must reject sequential checkpoints");
    assert!(matches!(err, SweepError::CheckpointMismatch(_)), "{err:?}");
}
