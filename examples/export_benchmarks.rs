//! Exports the synthetic benchmark suites to AIGER and BLIF files so they
//! can be inspected, cross-checked against other tools (ABC, mockturtle) or
//! reused outside this repository.
//!
//! Run with: `cargo run --release --example export_benchmarks -- [directory] [scale]`
//! (default: `./benchmark-export`, `tiny`)

use std::fs;
use std::path::PathBuf;
use stp_sat_sweep::netlist::{lutmap, write_aiger, write_blif};
use stp_sat_sweep::workloads::{epfl_suite, hwmcc_suite, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dir = PathBuf::from(
        args.get(1)
            .cloned()
            .unwrap_or_else(|| "benchmark-export".into()),
    );
    let scale = match args.get(2).map(|s| s.as_str()) {
        Some("small") => Scale::Small,
        Some("large") => Scale::Large,
        _ => Scale::Tiny,
    };
    fs::create_dir_all(dir.join("epfl"))?;
    fs::create_dir_all(dir.join("hwmcc"))?;

    for bench in epfl_suite(scale) {
        let aag = dir.join("epfl").join(format!("{}.aag", bench.name));
        write_aiger(&bench.aig, &aag)?;
        let lut = lutmap::map_to_luts(&bench.aig, 6);
        let blif = dir.join("epfl").join(format!("{}.blif", bench.name));
        write_blif(&lut, bench.name, &blif)?;
        println!(
            "epfl/{:<12} {:>7} AND gates -> {:>6} 6-LUTs",
            bench.name,
            bench.aig.num_ands(),
            lut.num_luts()
        );
    }

    for bench in hwmcc_suite(scale) {
        let aag = dir.join("hwmcc").join(format!("{}.aag", bench.name));
        write_aiger(&bench.aig, &aag)?;
        println!(
            "hwmcc/{:<13} {:>7} AND gates ({} before redundancy injection)",
            bench.name,
            bench.aig.num_ands(),
            bench.baseline_gates
        );
    }

    println!("\nwrote AIGER + BLIF files under {}", dir.display());
    Ok(())
}
