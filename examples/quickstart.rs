//! Quickstart: build a small network, simulate it, sweep it, verify it.
//!
//! Run with: `cargo run --example quickstart`

use stp_sat_sweep::bitsim::{AigSimulator, PatternSet};
use stp_sat_sweep::netlist::{lutmap, Aig};
use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::stp_sweep::stp_sim::StpSimulator;
use stp_sat_sweep::{Engine, SweepConfig, Sweeper};

fn main() {
    // 1. Build an AIG with some planted redundancy: the same XOR computed
    //    twice with different structure.
    let mut aig = Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let xor1 = aig.xor(a, b);
    let or_ab = aig.or(a, b);
    let nand_ab = aig.nand(a, b);
    let xor2 = aig.and(or_ab, nand_ab); // same function as xor1, different gates
    let y0 = aig.and(xor1, c);
    let y1 = aig.or(xor2, c);
    aig.add_output("y0", y0);
    aig.add_output("y1", y1);
    println!("original network: {}", aig.stats());

    // 2. Simulate it: word-parallel bitwise simulation of the AIG, and
    //    STP-based simulation of its 4-LUT mapping.
    let patterns = PatternSet::exhaustive(3);
    let bit_state = AigSimulator::new(&aig).run(&patterns);
    println!(
        "signature of y0 under exhaustive patterns: {}",
        bit_state.output_signature(&aig, 0).to_binary_string()
    );
    let lut = lutmap::map_to_luts(&aig, 4);
    let stp_state = StpSimulator::new(&lut).simulate_all(&patterns);
    println!(
        "same signature from the STP k-LUT simulator:  {}",
        stp_state.output_signature(&lut, 0).to_binary_string()
    );

    // 3. SAT-sweep the network with the paper's STP engine.
    let result = Sweeper::new(Engine::Stp)
        .config(SweepConfig::paper())
        .run(&aig)
        .expect("valid config, unlimited budget");
    println!("after sweeping: {}", result.aig.stats());
    println!("report: {}", result.report);

    // 4. Verify the sweep with combinational equivalence checking.
    let check = cec::check_equivalence(&aig, &result.aig, 100_000);
    println!("equivalence check passed: {}", check.equivalent);
    assert!(check.equivalent);
}
