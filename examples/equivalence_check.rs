//! Combinational equivalence checking of two structurally different
//! implementations of the same arithmetic function — the verification step
//! (`&cec`) the paper applies to every sweeping result.
//!
//! Run with: `cargo run --example equivalence_check`

use stp_sat_sweep::netlist::{Aig, Lit};
use stp_sat_sweep::stp_sweep::cec;

/// A ripple-carry adder built from XOR/MAJ full adders.
fn adder_maj(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        let cout = aig.maj(a[i], b[i], carry);
        aig.add_output(format!("s{i}"), sum);
        carry = cout;
    }
    aig.add_output("cout", carry);
    aig
}

/// The same adder with AND/OR carry logic.
fn adder_and_or(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        let c1 = aig.and(a[i], b[i]);
        let c2 = aig.and(axb, carry);
        let cout = aig.or(c1, c2);
        aig.add_output(format!("s{i}"), sum);
        carry = cout;
    }
    aig.add_output("cout", carry);
    aig
}

fn main() {
    let width = 12;
    let left = adder_maj(width);
    let right = adder_and_or(width);
    println!("implementation A: {}", left.stats());
    println!("implementation B: {}", right.stats());

    let result = cec::check_equivalence(&left, &right, 1_000_000);
    println!("equivalent: {}", result.equivalent);
    assert!(result.equivalent);

    // Corrupt one output and show that the checker produces a real
    // counter-example.
    let mut broken = adder_and_or(width);
    let flipped = !broken.outputs()[0].lit;
    broken.set_output_lit(0, flipped);
    let result = cec::check_equivalence(&left, &broken, 1_000_000);
    println!("corrupted copy equivalent: {}", result.equivalent);
    let ce = result.counterexample.expect("a counter-example exists");
    println!("counter-example assignment: {ce:?}");
    assert_ne!(left.evaluate(&ce), broken.evaluate(&ce));
    println!("counter-example confirmed by direct evaluation.");
}
