//! A single Table II row: sweep one HWMCC/IWLS-analog benchmark with the
//! baseline FRAIG-style engine and with the STP engine, then verify both.
//!
//! Run with: `cargo run --release --example sat_sweep -- [benchmark]`
//! (default: `oski15a07b0s`)

use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::workloads::{hwmcc_suite, Scale};
use stp_sat_sweep::{Engine, StatsObserver, SweepConfig, Sweeper};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "oski15a07b0s".to_string());

    let suite = hwmcc_suite(Scale::Small);
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    println!(
        "benchmark '{}': {} (irredundant core: {} gates)",
        bench.name,
        bench.aig.stats(),
        bench.baseline_gates
    );

    let baseline = Sweeper::new(Engine::Baseline)
        .config(SweepConfig::baseline())
        .run(&bench.aig)
        .expect("valid config");
    println!("\nbaseline &fraig-style sweeper:\n  {}", baseline.report);

    // Observe the STP engine while it runs: the same counters the report is
    // derived from are visible to any `Observer` implementation.
    let mut stats = StatsObserver::new();
    let stp = Sweeper::new(Engine::Stp)
        .config(SweepConfig::paper())
        .observer(&mut stats)
        .run(&bench.aig)
        .expect("valid config");
    println!("STP sweeper (Algorithm 2):\n  {}", stp.report);
    println!(
        "  observer saw {} counter-examples and {} class refinements",
        stats.counterexamples, stats.refinements
    );
    println!(
        "  window refinement avoided SAT on {} pairs ({} proved, {} disproved)",
        stp.report.proved_by_simulation + stp.report.disproved_by_simulation,
        stp.report.proved_by_simulation,
        stp.report.disproved_by_simulation
    );

    println!(
        "\nsatisfiable SAT calls: baseline {} vs STP {}",
        baseline.report.sat_calls_sat, stp.report.sat_calls_sat
    );
    println!(
        "total runtime:         baseline {:.3}s vs STP {:.3}s",
        baseline.report.total_time.as_secs_f64(),
        stp.report.total_time.as_secs_f64()
    );

    println!("\nverifying both results with CEC ...");
    assert!(cec::check_equivalence(&bench.aig, &baseline.aig, 500_000).equivalent);
    assert!(cec::check_equivalence(&bench.aig, &stp.aig, 500_000).equivalent);
    println!("both swept networks are equivalent to the original.");
}
