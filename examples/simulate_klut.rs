//! A single Table I row: simulate one EPFL-analog benchmark with the bitwise
//! baseline and with the STP simulator, on the AIG and on its 6-LUT mapping.
//!
//! Run with: `cargo run --release --example simulate_klut -- [benchmark] [patterns] [threads]`
//! (default: `multiplier`, 4096 patterns, 1 thread)
//!
//! With `threads > 1` the AIG and the STP simulators run through the
//! level-scheduled parallel evaluator; the signatures are bit-identical to
//! the sequential run (the example asserts it), only the times change.

use std::time::Instant;
use stp_sat_sweep::bitsim::{AigSimulator, LutSimulator, PatternSet};
use stp_sat_sweep::netlist::lutmap;
use stp_sat_sweep::stp_sweep::stp_sim::StpSimulator;
use stp_sat_sweep::workloads::{epfl_suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "multiplier".to_string());
    let num_patterns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let threads: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);

    let suite = epfl_suite(Scale::Small);
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'; pick one of the EPFL-analog names"));
    let aig = &bench.aig;
    println!("benchmark '{}': {}", bench.name, aig.stats());

    let patterns = PatternSet::random(aig.num_inputs(), num_patterns.max(1), 0xEB5)
        .expect("pattern count is clamped to at least 1");

    // TA: AIG simulation.
    let start = Instant::now();
    let bitwise = AigSimulator::new(aig).run_parallel(&patterns, threads);
    let ta_base = start.elapsed();

    let lut2 = lutmap::map_to_luts(aig, 2);
    let stp2 = StpSimulator::new(&lut2);
    let start = Instant::now();
    let _ = stp2.simulate_all_parallel(&patterns, threads);
    let ta_stp = start.elapsed();

    // TL: 6-LUT simulation.
    let lut6 = lutmap::map_to_luts(aig, 6);
    println!("6-LUT mapping: {}", lut6.stats());
    let start = Instant::now();
    let baseline = LutSimulator::new(&lut6).run(&patterns);
    let tl_base = start.elapsed();

    let stp6 = StpSimulator::new(&lut6);
    let start = Instant::now();
    let stp = stp6.simulate_all_parallel(&patterns, threads);
    let tl_stp = start.elapsed();

    // The three simulators agree on every output — and the parallel runs
    // are bit-identical to the sequential evaluation.
    let sequential = AigSimulator::new(aig).run(&patterns);
    for o in 0..aig.num_outputs() {
        assert_eq!(
            bitwise.output_signature(aig, o),
            baseline.output_signature(&lut6, o)
        );
        assert_eq!(
            baseline.output_signature(&lut6, o),
            stp.output_signature(&lut6, o)
        );
        assert_eq!(
            bitwise.output_signature(aig, o),
            sequential.output_signature(aig, o)
        );
    }

    println!("TA  bitwise AIG simulation: {:>10.3?}", ta_base);
    println!("TA  STP (2-LUT) simulation: {:>10.3?}", ta_stp);
    println!("TL  bitwise 6-LUT baseline: {:>10.3?}", tl_base);
    println!("TL  STP 6-LUT simulation:   {:>10.3?}", tl_stp);
    println!(
        "speed-up on the k-LUT network: {:.2}x (paper average: 7.18x)",
        tl_base.as_secs_f64() / tl_stp.as_secs_f64().max(1e-9)
    );
}
