//! Checkpoint/resume: cancel a sweep mid-run, persist its state, and
//! resume it later with results identical to an uninterrupted run.
//!
//! Run with `cargo run --example checkpoint_resume`.

use stp_sat_sweep::netlist::write_aiger_string;
use stp_sat_sweep::workloads::{generators, inject_redundancy};
use stp_sat_sweep::{Budget, Engine, Observer, SweepCheckpoint, SweepConfig, SweepError, Sweeper};

/// Persists every periodic checkpoint, keeping only the latest — the shape
/// of a real preemptible sweep service's checkpoint sink.
struct LatestCheckpoint {
    latest: Option<Vec<u8>>,
    emitted: usize,
}

impl Observer for LatestCheckpoint {
    fn on_checkpoint(&mut self, _checkpoint: &SweepCheckpoint, encoded: &[u8]) {
        // The session hands over the serialised bytes directly — a spill
        // sink stores them without re-encoding.
        self.latest = Some(encoded.to_vec());
        self.emitted += 1;
    }
}

fn main() {
    let base = generators::barrel_shifter(16);
    let aig = inject_redundancy(&base, 0.5, 7);
    let config = SweepConfig::fast().checkpoint_every(8);
    println!(
        "workload: barrel shifter + redundancy, {} AND gates",
        aig.num_ands()
    );

    // The reference: one uninterrupted run.
    let reference = Sweeper::new(Engine::Stp)
        .config(config)
        .run(&aig)
        .expect("uninterrupted run finishes");
    println!(
        "uninterrupted: {} (SAT calls {}, merges {})",
        reference.report, reference.report.sat_calls_total, reference.report.merges
    );

    // 1. Periodic checkpoints: every 8 committed candidates the session
    //    hands the observer a resumable snapshot.
    let mut sink = LatestCheckpoint {
        latest: None,
        emitted: 0,
    };
    let _ = Sweeper::new(Engine::Stp)
        .config(config)
        .observer(&mut sink)
        .run(&aig)
        .expect("runs");
    println!("periodic checkpoints emitted: {}", sink.emitted);

    // 2. A cancelled run: cap the SAT calls mid-sweep.  The error carries
    //    both the partial result and the stop-point checkpoint.
    let cap = reference.report.sat_calls_total / 2;
    let err = Sweeper::new(Engine::Stp)
        .config(config)
        .budget(Budget::unlimited().with_max_sat_calls(cap))
        .run(&aig)
        .expect_err("the cap must trip");
    let SweepError::BudgetExhausted {
        cause, checkpoint, ..
    } = err
    else {
        panic!("expected budget exhaustion");
    };
    let checkpoint = *checkpoint.expect("primed stops are resumable");
    println!(
        "cancelled ({cause}) after {} of {} SAT calls; checkpoint is {} bytes",
        checkpoint.sat_calls(),
        reference.report.sat_calls_total,
        checkpoint.encode().len()
    );

    // 3. Resume — through the binary encoding, as a separate process would.
    let restored = SweepCheckpoint::decode(&checkpoint.encode()).expect("decodes");
    let resumed = Sweeper::new(Engine::Stp)
        .resume_from(&aig, &restored)
        .expect("fingerprints match")
        .run()
        .expect("resume finishes");
    println!(
        "resumed:       {} (SAT calls {}, merges {})",
        resumed.report, resumed.report.sat_calls_total, resumed.report.merges
    );

    // The headline guarantee: identical counters and byte-identical output.
    assert_eq!(
        resumed.report.sat_calls_total,
        reference.report.sat_calls_total
    );
    assert_eq!(resumed.report.merges, reference.report.merges);
    assert_eq!(
        write_aiger_string(&resumed.aig),
        write_aiger_string(&reference.aig)
    );
    println!("cancel→resume output is byte-identical to the uninterrupted run");
}
