//! The worked example of Fig. 1 / Section III-C of the paper: a 5-input
//! network of 2-input NAND LUTs, simulated with ten patterns, once for all
//! nodes and once for two specified nodes only (which triggers the cut
//! algorithm and exhaustive-window evaluation).
//!
//! Run with: `cargo run --example figure1`

use stp_sat_sweep::bitsim::PatternSet;
use stp_sat_sweep::netlist::LutNetwork;
use stp_sat_sweep::stp_sweep::stp_sim::{cut_limit, StpSimulator};
use stp_sat_sweep::truthtable::TruthTable;

fn main() {
    // Fig. 1(a): PIs 1..5, six 2-input NAND LUTs (TT "0111"), two POs.
    let nand = TruthTable::from_binary_str(2, "0111").expect("valid truth table");
    let mut net = LutNetwork::new();
    let pis: Vec<_> = (1..=5).map(|i| net.add_input(format!("{i}"))).collect();
    let n6 = net.add_lut(vec![pis[0], pis[2]], nand.clone());
    let n7 = net.add_lut(vec![pis[1], pis[2]], nand.clone());
    let n8 = net.add_lut(vec![pis[2], pis[3]], nand.clone());
    let n9 = net.add_lut(vec![pis[3], pis[4]], nand.clone());
    let n10 = net.add_lut(vec![n6, n7], nand.clone());
    let n11 = net.add_lut(vec![n8, n9], nand);
    net.add_output("po1", n10, false);
    net.add_output("po2", n11, false);
    println!("network: {net}");

    // The ten simulation patterns of Section III-C (one row per input).
    let patterns = PatternSet::from_binary_strings(&[
        "0111001011",
        "1010011011",
        "1110011000",
        "0000011111",
        "1010000101",
    ]);
    println!(
        "{} patterns -> cut size limit log2({}) = {}",
        patterns.num_patterns(),
        patterns.num_patterns(),
        cut_limit(patterns.num_patterns())
    );

    let sim = StpSimulator::new(&net);

    // Mode `a`: simulate every node.
    let all = sim.simulate_all(&patterns);
    for (label, node) in [
        ("6", n6),
        ("7", n7),
        ("8", n8),
        ("9", n9),
        ("10", n10),
        ("11", n11),
    ] {
        println!(
            "signature of node {label:>2}: {}",
            all.signature(node).to_signature().to_binary_string()
        );
    }

    // Mode `s`: only nodes 7 and 8 are of interest; the rest of the network
    // is collapsed into cuts and never visited node-by-node.
    let specified = sim.simulate_nodes(&patterns, &[n7, n8]);
    println!(
        "specified-node simulation of node 7: {}",
        specified[&n7].to_binary_string()
    );
    println!(
        "specified-node simulation of node 8: {}",
        specified[&n8].to_binary_string()
    );
    assert_eq!(specified[&n7], all.signature(n7));
    assert_eq!(specified[&n8], all.signature(n8));
    println!("specified-node results match the full simulation.");
}
