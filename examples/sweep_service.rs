//! The sweep service, in-process: submit a mixed-priority batch of jobs to
//! a [`SweepService`] slicing them over a tiny quantum, then verify every
//! output is byte-identical to an uninterrupted run — the guarantee that
//! makes a multiplexing daemon safe to put in front of the sweeper.
//!
//! Run with `cargo run --example sweep_service`.
//!
//! The same service speaks a socket protocol when run as the `sweepd`
//! binary; `sweepctl` is the matching client:
//!
//! ```text
//! sweepd --socket /tmp/sweepd.sock --spill-dir /tmp/sweepd-spill &
//! sweepctl submit design.aag --priority high --wait -o swept.aag
//! ```

use std::time::Duration;

use stp_sat_sweep::netlist::write_aiger_string;
use stp_sat_sweep::sweepd::{
    effective_config, JobCounters, Preset, Priority, ServiceConfig, SweepService,
};
use stp_sat_sweep::workloads::{generators, inject_redundancy};
use stp_sat_sweep::{Engine, Sweeper};

fn main() {
    let jobs = [
        (
            "barrel shifter",
            Priority::Low,
            inject_redundancy(&generators::barrel_shifter(8), 0.5, 1),
        ),
        (
            "ripple adder",
            Priority::High,
            inject_redundancy(&generators::ripple_carry_adder(16), 0.4, 2),
        ),
        (
            "priority encoder",
            Priority::Normal,
            inject_redundancy(&generators::priority_encoder(12), 0.5, 3),
        ),
        (
            "decoder",
            Priority::High,
            inject_redundancy(&generators::decoder(5), 0.5, 4),
        ),
    ];

    // Two workers, a deliberately tiny 2 ms quantum: every job will be
    // suspended to a checkpoint and resumed many times.
    let service = SweepService::start(ServiceConfig {
        workers: 2,
        quantum: Duration::from_millis(2),
        spill_dir: None,
        checkpoint_every_secs: 0.0,
    })
    .expect("service starts");

    let mut ids = Vec::new();
    for (name, priority, aig) in &jobs {
        let bytes = write_aiger_string(aig).into_bytes();
        let (id, _) = service
            .submit(*priority, Engine::Stp, Preset::Fast, &bytes)
            .expect("submit");
        println!(
            "submitted {name:>17} as job {id} ({priority} priority, {} ANDs)",
            aig.num_ands()
        );
        ids.push(id);
    }

    for (id, (name, _, aig)) in ids.iter().zip(&jobs) {
        let info = service
            .wait(*id, Duration::from_secs(600))
            .expect("job finishes");
        let (aiger, counters) = service.fetch(*id).expect("output");

        // The headline guarantee: slicing is invisible in the output.
        let reference = Sweeper::new(Engine::Stp)
            .config(effective_config(Preset::Fast))
            .run(aig)
            .expect("uninterrupted run");
        assert_eq!(aiger, write_aiger_string(&reference.aig).into_bytes());
        assert_eq!(counters, JobCounters::from_report(&reference.report));
        println!(
            "job {id} ({name}) done in {} slices: {counters} — byte-identical to uninterrupted",
            info.slices
        );
    }
    service.shutdown();
    println!("all sliced outputs match their uninterrupted references");
}
