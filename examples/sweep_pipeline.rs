//! The session API end-to-end: a budgeted, observed multi-pass pipeline
//! (sweep → strash → sweep → verify) over a redundancy-injected workload,
//! plus a deliberately starved run showing that budget exhaustion hands back
//! a functionally equivalent partial result instead of discarding the work,
//! and a parallel re-run demonstrating that `parallelism(n)` changes the
//! wall-clock but not one bit of the result.
//!
//! Run with: `cargo run --release --example sweep_pipeline`

use stp_sat_sweep::stp_sweep::cec;
use stp_sat_sweep::workloads::{generators, inject_redundancy};
use stp_sat_sweep::{
    Budget, Engine, Observer, Pipeline, SatCallOutcome, SweepConfig, SweepError, Sweeper,
};

/// A minimal progress observer: one line per round, one dot per SAT call.
#[derive(Default)]
struct Progress {
    sat_calls: u64,
}

impl Observer for Progress {
    fn on_round(&mut self, round: usize, gates: usize) {
        println!("round {round}: sweeping {gates} AND gates");
    }

    fn on_sat_call(&mut self, _outcome: SatCallOutcome) {
        self.sat_calls += 1;
    }

    fn on_merge(&mut self, candidate: usize, replacement: stp_sat_sweep::netlist::Lit) {
        if replacement.is_constant() {
            println!("  node {candidate} proved constant");
        }
    }

    fn on_resimulation(&mut self, targets: usize, resimulated: usize, skipped: usize) {
        println!("  counter-example: {targets} targets, {resimulated} nodes resimulated, {skipped} skipped");
    }
}

fn main() {
    // An EPFL-analog arithmetic core with injected functional redundancy.
    let base = generators::array_multiplier(4);
    let redundant = inject_redundancy(&base, 0.5, 7);
    println!(
        "workload: array multiplier, {} gates after redundancy injection ({} before)\n",
        redundant.num_ands(),
        base.num_ands()
    );

    // 1. A multi-pass pipeline: sweep, re-hash, sweep again, then verify the
    //    result against the input as part of the pipeline itself.
    let mut progress = Progress::default();
    let outcome = Pipeline::new(SweepConfig::paper())
        .sweep(Engine::Stp)
        .strash()
        .sweep(Engine::Stp)
        .verify()
        .observer(&mut progress)
        .run(&redundant)
        .expect("the pipeline runs and verifies");

    println!("\nper-pass breakdown:");
    for pass in &outcome.passes {
        println!(
            "  {:<18} {:>5} -> {:<5} gates  {:>8.3}s{}",
            pass.name,
            pass.gates_before,
            pass.gates_after,
            pass.time.as_secs_f64(),
            pass.report
                .map(|r| format!("  ({} SAT calls)", r.sat_calls_total))
                .unwrap_or_default()
        );
    }
    println!(
        "aggregate: {} ({} SAT calls seen by the observer)",
        outcome.report, progress.sat_calls
    );

    println!(
        "incremental resimulation: {} events, {} nodes evaluated, {} skipped",
        outcome.report.resim_events, outcome.report.resim_nodes, outcome.report.resim_skipped_nodes
    );

    // 2. The same sweep with 4 worker threads: level-scheduled parallel
    //    simulation is deterministic, so the result is identical.
    let parallel = Sweeper::new(Engine::Stp)
        .config(SweepConfig::paper().parallelism(4))
        .run(&redundant)
        .expect("parallel run");
    let sequential = Sweeper::new(Engine::Stp)
        .config(SweepConfig::paper())
        .run(&redundant)
        .expect("sequential run");
    assert_eq!(parallel.aig.num_ands(), sequential.aig.num_ands());
    assert_eq!(parallel.report.merges, sequential.report.merges);
    println!(
        "\nparallelism(4) run: identical result ({} gates, {} merges) on {} threads",
        parallel.report.gates_after, parallel.report.merges, parallel.report.num_threads
    );

    // 3. The same sweep under a starvation budget: the partial result is
    //    returned, not discarded, and still verifies.
    match Sweeper::new(Engine::Stp)
        .config(SweepConfig::paper())
        .budget(Budget::unlimited().with_max_sat_calls(2))
        .run(&redundant)
    {
        Ok(full) => println!(
            "\nbudgeted run finished within 2 SAT calls: {}",
            full.report
        ),
        Err(SweepError::BudgetExhausted { cause, partial, .. }) => {
            println!(
                "\nbudgeted run stopped early ({cause}): {} -> {} gates, still equivalent: {}",
                partial.report.gates_before,
                partial.report.gates_after,
                cec::check_equivalence(&redundant, &partial.aig, 500_000).equivalent
            );
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}
